(* Cross-module property tests: router state-machine invariants under
   random operation sequences, and concrete/concolic equivalence of the
   filter interpreter over random routes. *)
open Dice_inet
open Dice_bgp
open Dice_concolic
module Eventq = Dice_sim.Eventq

let ip = Ipv4.of_string

let config =
  Config_parser.parse
    {|
    router id 10.0.0.1;
    local as 64510;
    filter f {
      if net ~ [ 10.0.0.0/8{8,24}, 192.168.0.0/16+ ] then { bgp_local_pref = 120; accept; }
      if bgp_med > 100 then reject;
      accept;
    }
    protocol static { route 192.0.2.0/24 via 10.0.0.1; }
    protocol bgp a { neighbor 10.0.1.2 as 64501; import filter f; export all; }
    protocol bgp b { neighbor 10.0.2.2 as 64700; import all; export all; }
    |}

let peer_a = ip "10.0.1.2"
let peer_b = ip "10.0.2.2"

let establish router peer remote_as =
  ignore (Router.handle_event router ~peer Fsm.Manual_start);
  ignore (Router.handle_event router ~peer Fsm.Tcp_connected);
  ignore
    (Router.handle_msg router ~peer
       (Msg.Open
          { Msg.version = 4; my_as = remote_as land 0xFFFF; hold_time = 90; bgp_id = peer;
            capabilities = [ Msg.Cap_as4 remote_as ] }));
  ignore (Router.handle_msg router ~peer Msg.Keepalive)

let ready () =
  let r = Router.create config in
  establish r peer_a 64501;
  establish r peer_b 64700;
  r

(* random router operations *)
type op =
  | Announce of int * Prefix.t * int * int option  (* peer idx, prefix, origin asn, med *)
  | Withdraw of int * Prefix.t

let arb_op =
  let open QCheck.Gen in
  let prefix =
    map
      (fun (a, l) -> Prefix.make ((a * 1103515245) land 0xFFFFFFFF) (8 + (l mod 17)))
      (pair (int_bound 5000) (int_bound 16))
  in
  let announce =
    map
      (fun (pi, pfx, origin, med) ->
        Announce (pi mod 2, pfx, 64800 + (origin mod 50),
                  if med mod 3 = 0 then Some (med mod 200) else None))
      (tup4 (int_bound 1) prefix (int_bound 49) (int_bound 199))
  in
  let withdraw = map (fun (pi, pfx) -> Withdraw (pi mod 2, pfx)) (pair (int_bound 1) prefix) in
  QCheck.make (QCheck.Gen.list_size (int_range 1 40) (oneof [ announce; withdraw ]))

let apply_op router op =
  let peer_of = function
    | 0 -> peer_a
    | _ -> peer_b
  in
  match op with
  | Announce (pi, prefix, origin, med) ->
    let route =
      Route.make ~origin:Attr.Igp
        ~as_path:[ Asn.Path.Seq [ (if pi = 0 then 64501 else 64700); origin ] ]
        ?med:(Some med) ~next_hop:(peer_of pi) ()
    in
    ignore
      (Router.handle_msg router ~peer:(peer_of pi)
         (Msg.Update { withdrawn = []; attrs = Route.to_attrs route; nlri = [ prefix ] }))
  | Withdraw (pi, prefix) ->
    ignore
      (Router.handle_msg router ~peer:(peer_of pi)
         (Msg.Update { withdrawn = [ prefix ]; attrs = []; nlri = [] }))

let prop_snapshot_roundtrip_after_ops =
  QCheck.Test.make ~name:"router snapshot/restore identity under random operations"
    ~count:60 arb_op (fun ops ->
      let r = ready () in
      List.iter (apply_op r) ops;
      let image = Router.snapshot r in
      let r' = Router.restore config image in
      Bytes.equal image (Router.snapshot r'))

let prop_snapshot_stable_layout =
  (* two snapshots separated by [k] operations share most slots: the image
     length grows monotonically and common prefixes of unchanged entries
     stay at identical offsets — verified via the CoW page metric: the
     fraction of changed pages is bounded by changed slots *)
  QCheck.Test.make ~name:"snapshot layout is slot-stable" ~count:40
    QCheck.(pair arb_op (int_bound 3))
    (fun (ops, extra) ->
      let r = ready () in
      List.iter (apply_op r) ops;
      let store = Dice_checkpoint.Store.create ~page_size:256 () in
      let s1 = Dice_checkpoint.Store.capture store (Router.snapshot r) in
      (* apply a handful more operations *)
      let more =
        List.filteri (fun i _ -> i <= extra) ops
      in
      List.iter (apply_op r) more;
      let s2 = Dice_checkpoint.Store.capture store (Router.snapshot r) in
      let changed = Dice_checkpoint.Store.unique_pages s2 ~relative_to:s1 in
      (* each op touches at most ~4 slots (adj-in, loc, 2x adj-out), each
         spanning at most 2 pages at this page size, plus the header *)
      changed <= (List.length more * 8) + 4)

let prop_loc_rib_consistent_with_adj =
  QCheck.Test.make ~name:"every Loc-RIB route is backed by an Adj-RIB-In or a static"
    ~count:60 arb_op (fun ops ->
      let r = ready () in
      List.iter (apply_op r) ops;
      let adj_a = Option.value (Router.adj_rib_in r peer_a) ~default:Rib.Adj.empty in
      let adj_b = Option.value (Router.adj_rib_in r peer_b) ~default:Rib.Adj.empty in
      List.for_all
        (fun (prefix, (e : Rib.Loc.entry)) ->
          if e.Rib.Loc.src = Route.static_src then true
          else begin
            let adj = if e.Rib.Loc.src.Route.peer_addr = peer_a then adj_a else adj_b in
            match Rib.Adj.find_opt prefix adj with
            | Some route -> Route.equal route e.Rib.Loc.route
            | None -> false
          end)
        (Rib.Loc.to_list (Router.loc_rib r)))

let prop_withdraw_all_empties =
  QCheck.Test.make ~name:"announcing then withdrawing everything leaves only statics"
    ~count:60 arb_op (fun ops ->
      let r = ready () in
      List.iter (apply_op r) ops;
      (* withdraw every prefix either peer announced *)
      List.iter
        (fun op ->
          match op with
          | Announce (pi, prefix, _, _) -> apply_op r (Withdraw (pi, prefix))
          | Withdraw _ -> ())
        ops;
      Rib.Loc.cardinal (Router.loc_rib r) = 1
      && Router.best_route r (Prefix.of_string "192.0.2.0/24") <> None)

(* ---- event queue: FIFO tie-breaking ---- *)

let prop_eventq_fifo_ties =
  (* the fault-injection replay guarantee leans on this: events pushed
     at equal timestamps pop in insertion order, whatever the heap did
     to get there. Times are drawn from a tiny set so collisions are
     the common case, and pushes are interleaved with pops. *)
  QCheck.Test.make ~name:"eventq pops equal timestamps in insertion order" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 60) (pair (int_bound 3) (int_bound 2)))
    (fun ops ->
      let q = Eventq.create () in
      let pushed = ref [] (* (time, payload) in push order, newest first *)
      and popped = ref []
      and counter = ref 0 in
      List.iter
        (fun (t, act) ->
          if act = 0 && not (Eventq.is_empty q) then
            match Eventq.pop q with
            | Some (time, v) -> popped := (time, v) :: !popped
            | None -> assert false
          else begin
            incr counter;
            let time = float_of_int t in
            Eventq.push q ~time !counter;
            pushed := (time, !counter) :: !pushed
          end)
        ops;
      let rec drain () =
        match Eventq.pop q with
        | Some (time, v) -> popped := (time, v) :: !popped; drain ()
        | None -> ()
      in
      drain ();
      let popped = List.rev !popped in
      (* every event came out exactly once *)
      List.sort compare popped = List.sort compare (List.rev !pushed)
      (* within each pop run up to an interleaved push boundary, equal
         times must preserve insertion order: payloads are the push
         counter, so for equal times they must be increasing *)
      && List.for_all
           (fun time ->
             let at_t = List.filter_map
                 (fun (t, v) -> if t = time then Some v else None) popped
             in
             List.sort compare at_t = at_t)
           [ 0.0; 1.0; 2.0; 3.0 ])

(* ---- filter interpreter: concrete and concolic agree ---- *)

let filter_under_test =
  match Config_types.find_filter config "f" with
  | Some f -> f
  | None -> assert false

let prop_filter_concolic_equiv =
  QCheck.Test.make
    ~name:"filter verdicts agree between concrete and symbolized evaluation" ~count:300
    QCheck.(triple (int_bound 0xFFFFFF) (int_bound 32) (int_bound 300))
    (fun (addr_base, len, med) ->
      let addr = (addr_base * 7919) land 0xFFFFFFFF in
      let prefix = Prefix.make addr len in
      let route =
        Route.make ~origin:Attr.Igp
          ~as_path:[ Asn.Path.Seq [ 64501 ] ]
          ~med:(Some med) ~next_hop:(ip "10.0.1.2") ()
      in
      let concrete =
        Filter_interp.run (Engine.null ()) ~source_as:64501 ~local_as:64510
          filter_under_test
          (Croute.of_route prefix route)
      in
      let space = Engine.Space.create () in
      let ctx = Engine.create ~space ~overrides:(Hashtbl.create 0) () in
      let symbolized =
        Filter_interp.run ctx ~source_as:64501 ~local_as:64510 filter_under_test
          (Dice_core.Symbolize.croute ctx ~tag:"pf" ~prefix ~route)
      in
      let verdict = function
        | Filter_interp.Accepted cr ->
          let p', r' = Croute.to_route cr in
          Some (Prefix.to_string p', r'.Route.local_pref)
        | Filter_interp.Rejected -> None
      in
      verdict concrete = verdict symbolized)

let prop_import_concolic_matches_concrete_processing =
  (* import_concolic with a null context must behave like processing the
     equivalent UPDATE *)
  QCheck.Test.make ~name:"import_concolic agrees with handle_msg" ~count:60
    QCheck.(pair (int_bound 0xFFFFFF) (int_bound 24))
    (fun (addr_base, len) ->
      let prefix = Prefix.make ((addr_base * 31) land 0xFFFFFFFF) (8 + len) in
      let route =
        Route.make ~origin:Attr.Igp
          ~as_path:[ Asn.Path.Seq [ 64501; 64900 ] ]
          ~next_hop:(ip "10.0.1.2") ()
      in
      let via_msg = ready () in
      ignore
        (Router.handle_msg via_msg ~peer:peer_a
           (Msg.Update { withdrawn = []; attrs = Route.to_attrs route; nlri = [ prefix ] }));
      let via_concolic = ready () in
      let outcome =
        Router.import_concolic ~ctx:(Engine.null ()) via_concolic ~peer:peer_a
          (Croute.of_route prefix route)
      in
      let best r = Option.map (fun (e : Rib.Loc.entry) -> e.Rib.Loc.route) (Router.best_route r prefix) in
      best via_msg = best via_concolic
      && outcome.Router.accepted = (best via_msg <> None && Router.best_route via_msg prefix <> None
                                    || Rib.Adj.find_opt prefix
                                         (Option.value (Router.adj_rib_in via_msg peer_a)
                                            ~default:Rib.Adj.empty)
                                       <> None))

let suite =
  [ QCheck_alcotest.to_alcotest prop_snapshot_roundtrip_after_ops;
    QCheck_alcotest.to_alcotest prop_snapshot_stable_layout;
    QCheck_alcotest.to_alcotest prop_loc_rib_consistent_with_adj;
    QCheck_alcotest.to_alcotest prop_withdraw_all_empties;
    QCheck_alcotest.to_alcotest prop_eventq_fifo_ties;
    QCheck_alcotest.to_alcotest prop_filter_concolic_equiv;
    QCheck_alcotest.to_alcotest prop_import_concolic_matches_concrete_processing
  ]
