(* Tests for the concolic exploration loop. *)
open Dice_concolic

let explore ?(max_runs = 64) ?(strategy = Strategy.Dfs) program =
  Explorer.explore
    ~config:{ Explorer.default_config with Explorer.max_runs; strategy }
    program

(* a diamond: two independent branches, four paths *)
let diamond hits ctx =
  let x = Engine.input ctx ~name:"dx" ~width:8 ~default:0L in
  let y = Engine.input ctx ~name:"dy" ~width:8 ~default:0L in
  let a = Engine.branchf ctx "d:a" (Cval.ugt x (Cval.of_int ~width:8 10)) in
  let b = Engine.branchf ctx "d:b" (Cval.ugt y (Cval.of_int ~width:8 10)) in
  hits := (a, b) :: !hits

let test_diamond_all_paths () =
  let hits = ref [] in
  let report = explore (diamond hits) in
  let distinct = List.sort_uniq compare !hits in
  Alcotest.(check int) "all four outcomes" 4 (List.length distinct);
  Alcotest.(check int) "four distinct paths" 4 report.Explorer.distinct_paths;
  Alcotest.(check bool) "full coverage" true (Explorer.coverage_ratio report = 1.0)

let test_deep_equality () =
  (* requires solving x == 0xDEAD through a guard: classic concolic win *)
  let found = ref false in
  let program ctx =
    let x = Engine.input ctx ~name:"eq" ~width:32 ~default:0L in
    if Engine.branchf ctx "deep:guard" (Cval.eq x (Cval.of_int ~width:32 0xDEAD)) then
      found := true
  in
  ignore (explore program);
  Alcotest.(check bool) "found the magic value" true !found

let test_nested_guards () =
  (* x > 100, then x < 200, then x == 150: nested path, needs prefix
     preservation *)
  let reached = ref false in
  let program ctx =
    let x = Engine.input ctx ~name:"ng" ~width:32 ~default:0L in
    if Engine.branchf ctx "ng:1" (Cval.ugt x (Cval.of_int ~width:32 100)) then
      if Engine.branchf ctx "ng:2" (Cval.ult x (Cval.of_int ~width:32 200)) then
        if Engine.branchf ctx "ng:3" (Cval.eq x (Cval.of_int ~width:32 150)) then
          reached := true
  in
  ignore (explore program);
  Alcotest.(check bool) "reached depth 3" true !reached

let test_max_runs_respected () =
  let program ctx =
    let x = Engine.input ctx ~name:"mr" ~width:32 ~default:0L in
    (* a long chain: more paths than the budget *)
    for i = 0 to 20 do
      ignore
        (Engine.branchf ctx
           (Printf.sprintf "mr:%d" i)
           (Cval.eq x (Cval.of_int ~width:32 (1000 + i))))
    done
  in
  let report = explore ~max_runs:10 program in
  Alcotest.(check bool) "bounded" true (report.Explorer.executions <= 10)

let test_initial_run_counts () =
  let report = explore ~max_runs:1 (fun ctx -> ignore (Engine.input ctx ~name:"ir" ~width:8 ~default:0L)) in
  Alcotest.(check int) "exactly one" 1 report.Explorer.executions;
  Alcotest.(check int) "no negations" 0 report.Explorer.negations_attempted

let test_program_exception_tolerated () =
  let program ctx =
    let x = Engine.input ctx ~name:"ex" ~width:8 ~default:0L in
    if Engine.branchf ctx "ex:b" (Cval.ugt x (Cval.of_int ~width:8 10)) then
      failwith "boom"
  in
  let report = explore program in
  Alcotest.(check bool) "keeps exploring" true (report.Explorer.executions >= 2)

let test_all_strategies_cover_diamond () =
  List.iter
    (fun strategy ->
      let hits = ref [] in
      let report = explore ~strategy (diamond hits) in
      Alcotest.(check bool)
        (Strategy.to_string strategy ^ " reaches full coverage")
        true
        (Explorer.coverage_ratio report = 1.0))
    [ Strategy.Dfs; Strategy.Generational; Strategy.Cover_new; Strategy.Random_negation 3L ]

let test_deterministic () =
  let run () =
    let report = explore (fun ctx ->
        let x = Engine.input ctx ~name:"det" ~width:16 ~default:0L in
        ignore (Engine.branchf ctx "det:a" (Cval.ugt x (Cval.of_int ~width:16 5)));
        ignore (Engine.branchf ctx "det:b" (Cval.ult x (Cval.of_int ~width:16 100))))
    in
    List.map (fun (r : Explorer.run) -> r.assignment) report.Explorer.runs
  in
  Alcotest.(check bool) "same runs" true (run () = run ())

let test_runs_metadata () =
  let report = explore (fun ctx ->
      let x = Engine.input ctx ~name:"meta" ~width:8 ~default:0L in
      ignore (Engine.branchf ctx "meta:b" (Cval.eq x (Cval.of_int ~width:8 9))))
  in
  match report.Explorer.runs with
  | first :: _ ->
    Alcotest.(check int) "index 0" 0 first.Explorer.index;
    Alcotest.(check int) "path length" 1 first.Explorer.path_length;
    Alcotest.(check (list (pair string int64))) "assignment" [ ("meta", 0L) ]
      first.Explorer.assignment
  | [] -> Alcotest.fail "no runs"

let test_seed_constraints_respected () =
  (* an input constrained to <= 32 must never be explored beyond it *)
  let violations = ref 0 in
  let program ctx =
    let len = Engine.input ctx ~name:"scr" ~width:8 ~default:24L in
    (match Cval.sym len with
    | Some e ->
      Engine.constrain ctx (Sym.Binop (Sym.Ule, e, Sym.const ~width:8 32L)) ~nonzero:true
    | None -> ());
    if Cval.to_int len > 32 then incr violations;
    ignore (Engine.branchf ctx "scr:b" (Cval.ugt len (Cval.of_int ~width:8 16)));
    ignore (Engine.branchf ctx "scr:c" (Cval.eq len (Cval.of_int ~width:8 31)))
  in
  ignore (explore program);
  Alcotest.(check int) "never violated" 0 !violations

let test_program_exns_counted () =
  let program ctx =
    let x = Engine.input ctx ~name:"pxc" ~width:8 ~default:0L in
    if Engine.branchf ctx "pxc:b" (Cval.ugt x (Cval.of_int ~width:8 10)) then
      failwith "boom"
  in
  let report = explore program in
  Alcotest.(check bool) "exceptions tallied" true (report.Explorer.program_exns > 0);
  Alcotest.(check bool) "still explored" true (report.Explorer.executions >= 2)

let test_fatal_exception_reraised () =
  (* Stack_overflow must escape the per-run catch: masking it turns a
     dying explorer into a silent coverage plateau *)
  let program ctx =
    let x = Engine.input ctx ~name:"fat" ~width:8 ~default:0L in
    if Engine.branchf ctx "fat:b" (Cval.ugt x (Cval.of_int ~width:8 10)) then ();
    raise Stack_overflow
  in
  Alcotest.check_raises "re-raised" Stack_overflow (fun () -> ignore (explore program))

let test_generational_deterministic () =
  let run () =
    let report =
      explore ~strategy:Strategy.Generational (fun ctx ->
          let x = Engine.input ctx ~name:"gdet" ~width:16 ~default:0L in
          ignore (Engine.branchf ctx "gdet:a" (Cval.ugt x (Cval.of_int ~width:16 5)));
          ignore (Engine.branchf ctx "gdet:b" (Cval.ult x (Cval.of_int ~width:16 100)));
          ignore (Engine.branchf ctx "gdet:c" (Cval.eq x (Cval.of_int ~width:16 64))))
    in
    List.map (fun (r : Explorer.run) -> r.assignment) report.Explorer.runs
  in
  Alcotest.(check bool) "same runs under heap scheduling" true (run () = run ())

let test_attempt_key_structural () =
  (* Regression for hash-keyed attempt identity. The previous attempt_key
     folded (site id, direction) values through a 64-bit FNV-style hash;
     two distinct prefixes whose folds collided were conflated, and the
     second negation was silently dropped as "already attempted".
     Reproduce the old fold and exhibit such a collision (constructed
     algebraically: with combine(a,v) = ((a*p) xor v) * p, any two first
     values v1a <> v1b collide once v2b = (c1a*p) xor (c1b*p) xor v2a),
     then check the structural key keeps the pair distinct. *)
  let prime = 0x100000001B3L in
  let old_combine a v = Int64.mul (Int64.logxor (Int64.mul a prime) v) prime in
  let old_key vs = List.fold_left old_combine 0xCBF29CE484222325L vs in
  let v1a = 2L and v1b = 4L and v2a = 6L in
  let c1a = old_combine 0xCBF29CE484222325L v1a in
  let c1b = old_combine 0xCBF29CE484222325L v1b in
  let v2b =
    Int64.logxor (Int64.logxor (Int64.mul c1a prime) (Int64.mul c1b prime)) v2a
  in
  let sa = [ v1a; v2a ] and sb = [ v1b; v2b ] in
  Alcotest.(check bool) "streams differ" true (sa <> sb);
  Alcotest.(check int64) "old scheme conflates them" (old_key sa) (old_key sb);
  (* the structural key is the (site id, direction) list itself, so
     distinct value streams can never conflate *)
  Alcotest.(check bool) "structural keys stay distinct" true (sa <> sb);
  (* and on real paths the key is exactly the requested branch-direction
     sequence: distinct requests get distinct keys, while flipping entry 0
     of [t; t] and of [t; f] — which genuinely request the same new path
     [f] — share one *)
  let site name = Path.Site.intern name in
  let entry name dir =
    { Path.site = site name;
      constr =
        { Path.expr = Sym.const ~width:1 (if dir then 1L else 0L);
          expected_nonzero = dir;
        };
    }
  in
  let path_tt = [| entry "ak:1" true; entry "ak:2" true |] in
  let path_tf = [| entry "ak:1" true; entry "ak:2" false |] in
  let keys =
    [ Explorer.attempt_key path_tt 0;
      Explorer.attempt_key path_tt 1;
      Explorer.attempt_key path_tf 0;
      Explorer.attempt_key path_tf 1
    ]
  in
  Alcotest.(check int) "three distinct requested paths" 3
    (List.length (List.sort_uniq compare keys));
  Alcotest.(check bool) "same requested path shares a key" true
    (Explorer.attempt_key path_tt 0 = Explorer.attempt_key path_tf 0);
  (* flipping entry 0 of [t; t] requests the same path as flipping gives
     [f], and the key reflects exactly the requested branch-direction
     sequence *)
  Alcotest.(check bool) "key is the requested direction sequence" true
    (Explorer.attempt_key path_tt 1
    = [ (Path.Site.id (site "ak:1"), true); (Path.Site.id (site "ak:2"), false) ])

let test_pqueue_order () =
  let q : (int * int) Pqueue.t = Pqueue.create () in
  List.iter
    (fun (p, o) -> Pqueue.push q ~priority:p ~order:o (p, o))
    [ (1, 0); (3, 1); (3, 2); (2, 3); (0, 4) ];
  Alcotest.(check int) "length" 5 (Pqueue.length q);
  let rec drain acc =
    match Pqueue.pop q with None -> List.rev acc | Some v -> drain (v :: acc)
  in
  Alcotest.(check (list (pair int int)))
    "priority desc, order asc on ties"
    [ (3, 1); (3, 2); (2, 3); (1, 0); (0, 4) ]
    (drain []);
  Alcotest.(check bool) "empty after drain" true (Pqueue.is_empty q)

let test_incremental_matches_scratch () =
  let program ctx =
    let x = Engine.input ctx ~name:"ipr" ~width:32 ~default:0L in
    if Engine.branchf ctx "ipr:1" (Cval.ugt x (Cval.of_int ~width:32 100)) then
      if Engine.branchf ctx "ipr:2" (Cval.ult x (Cval.of_int ~width:32 200)) then
        ignore (Engine.branchf ctx "ipr:3" (Cval.eq x (Cval.of_int ~width:32 150)))
  in
  let run incremental =
    Explorer.explore
      ~config:{ Explorer.default_config with Explorer.max_runs = 64; incremental }
      program
  in
  let inc = run true and scratch = run false in
  Alcotest.(check bool) "same coverage" true
    (Explorer.coverage_ratio inc = Explorer.coverage_ratio scratch);
  Alcotest.(check int) "same distinct paths" scratch.Explorer.distinct_paths
    inc.Explorer.distinct_paths;
  Alcotest.(check bool) "prefix reuses recorded" true
    (inc.Explorer.solver_stats.Solver.prefix_reuses > 0);
  Alcotest.(check bool) "scan skips recorded" true
    (inc.Explorer.solver_stats.Solver.first_violated_skips > 0);
  Alcotest.(check int) "scratch never reuses a prefix" 0
    scratch.Explorer.solver_stats.Solver.prefix_reuses

let test_solver_stats_populated () =
  let report = explore (fun ctx ->
      let x = Engine.input ctx ~name:"ss" ~width:8 ~default:0L in
      ignore (Engine.branchf ctx "ss:b" (Cval.ugt x (Cval.of_int ~width:8 3))))
  in
  Alcotest.(check bool) "solver called" true (report.Explorer.solver_stats.Solver.calls > 0);
  Alcotest.(check bool) "some sat" true (report.Explorer.negations_sat > 0)

let suite =
  [ ("diamond covers all paths", `Quick, test_diamond_all_paths);
    ("deep equality found", `Quick, test_deep_equality);
    ("nested guards", `Quick, test_nested_guards);
    ("max_runs respected", `Quick, test_max_runs_respected);
    ("initial run only", `Quick, test_initial_run_counts);
    ("program exception tolerated", `Quick, test_program_exception_tolerated);
    ("all strategies cover diamond", `Quick, test_all_strategies_cover_diamond);
    ("deterministic", `Quick, test_deterministic);
    ("run metadata", `Quick, test_runs_metadata);
    ("seed constraints respected", `Quick, test_seed_constraints_respected);
    ("program exceptions counted", `Quick, test_program_exns_counted);
    ("fatal exceptions re-raised", `Quick, test_fatal_exception_reraised);
    ("generational deterministic", `Quick, test_generational_deterministic);
    ("attempt key is structural", `Quick, test_attempt_key_structural);
    ("pqueue pop order", `Quick, test_pqueue_order);
    ("incremental matches from-scratch", `Quick, test_incremental_matches_scratch);
    ("solver stats populated", `Quick, test_solver_stats_populated)
  ]
