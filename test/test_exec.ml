(* Tests for the parallel exploration executor (Dice_exec). *)
module Pool = Dice_exec.Pool
module Jobq = Dice_exec.Jobq
module Dedup = Dice_exec.Dedup
module Qcache = Dice_exec.Qcache
module Vcache = Dice_exec.Vcache
module Explorer = Dice_exec.Explorer
module E = Dice_concolic.Explorer
module Engine = Dice_concolic.Engine
module Coverage = Dice_concolic.Coverage
module Cval = Dice_concolic.Cval
module Sym = Dice_concolic.Sym
module Path = Dice_concolic.Path
module Solver = Dice_concolic.Solver
module Strategy = Dice_concolic.Strategy

(* ---- Pool ---- *)

let test_pool_map_order () =
  let items = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "input order preserved" (List.map (fun x -> x * x) items)
    (Pool.map ~jobs:4 (fun x -> x * x) items)

let test_pool_run_all_workers () =
  let seen = Array.make 4 false in
  Pool.run ~jobs:4 (fun w -> seen.(w) <- true);
  Alcotest.(check bool) "every index ran" true (Array.for_all Fun.id seen)

let test_pool_exception_propagates () =
  Alcotest.check_raises "first failure re-raised" (Failure "w0") (fun () ->
      Pool.run ~jobs:3 (fun w -> if w = 0 then failwith "w0"))

(* N jobs through a shared queue under 4-way contention: every job is
   processed exactly once, with follow-up pushes exercising the in-flight
   accounting. *)
let test_pool_jobs_exactly_once () =
  let n = 500 in
  let counts = Array.init n (fun _ -> Atomic.make 0) in
  let q = Jobq.create ~shards:4 () in
  (* seed with even indices; workers push each job's odd successor *)
  for i = 0 to (n / 2) - 1 do
    ignore (Jobq.push q (2 * i))
  done;
  Pool.run ~jobs:4 (fun _w ->
      let rec loop () =
        match Jobq.pop q with
        | None -> ()
        | Some i ->
          Atomic.incr counts.(i);
          if i land 1 = 0 then ignore (Jobq.push q (i + 1));
          Jobq.task_done q;
          loop ()
      in
      loop ());
  Array.iteri
    (fun i c ->
      Alcotest.(check int) (Printf.sprintf "job %d exactly once" i) 1 (Atomic.get c))
    counts

(* ---- Jobq ---- *)

let drain q =
  let rec go acc =
    match Jobq.pop q with
    | None -> List.rev acc
    | Some x ->
      Jobq.task_done q;
      go (x :: acc)
  in
  go []

let test_jobq_fifo_order () =
  let q = Jobq.create ~shards:1 ~mode:`Fifo () in
  List.iter (fun x -> ignore (Jobq.push q x)) [ 1; 2; 3; 4 ];
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4 ] (drain q)

let test_jobq_lifo_order () =
  let q = Jobq.create ~shards:1 ~mode:`Lifo () in
  List.iter (fun x -> ignore (Jobq.push q x)) [ 1; 2; 3; 4 ];
  Alcotest.(check (list int)) "lifo" [ 4; 3; 2; 1 ] (drain q)

let test_jobq_close_drops () =
  let q = Jobq.create () in
  Alcotest.(check bool) "open push accepted" true (Jobq.push q 1);
  Jobq.close q;
  Alcotest.(check bool) "push after close refused" false (Jobq.push q 2);
  Alcotest.(check (option int)) "closed pop" None (Jobq.pop q);
  Alcotest.(check int) "push after close dropped" 0 (Jobq.length q)

let test_jobq_empty_pop () =
  let q : int Jobq.t = Jobq.create () in
  Alcotest.(check (option int)) "no work, no block" None (Jobq.pop q)

(* ---- Dedup ---- *)

let test_dedup_claim_once_concurrent () =
  let keys = 200 in
  let wins = Array.init keys (fun _ -> Atomic.make 0) in
  let d = Dedup.create () in
  Pool.run ~jobs:4 (fun _w ->
      for k = 0 to keys - 1 do
        if Dedup.claim d (Int64.of_int k) then Atomic.incr wins.(k)
      done);
  Array.iteri
    (fun k w ->
      Alcotest.(check int) (Printf.sprintf "key %d single winner" k) 1 (Atomic.get w))
    wins;
  Alcotest.(check int) "size" keys (Dedup.size d)

(* ---- Qcache ---- *)

let constraints_gt ~name v =
  let x = Sym.Var (Sym.var ~name ~width:8) in
  [ { Path.expr = Sym.Binop (Sym.Ugt, x, Sym.const ~width:8 v); expected_nonzero = true } ]

let env_bindings (e : Sym.env) =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) e [])

let test_qcache_identical_models () =
  let q = Qcache.create () in
  let cs = constraints_gt ~name:"qc.x" 10L in
  let hint = Hashtbl.create 0 in
  let m1 =
    match Qcache.solve q ~hint cs with
    | Solver.Sat m -> m
    | _ -> Alcotest.fail "first solve should be sat"
  in
  let m2 =
    match Qcache.solve q ~hint cs with
    | Solver.Sat m -> m
    | _ -> Alcotest.fail "second solve should be sat"
  in
  Alcotest.(check (list (pair int int64)))
    "identical model for identical constraint set" (env_bindings m1) (env_bindings m2);
  Alcotest.(check int) "one miss" 1 (Qcache.misses q);
  Alcotest.(check int) "one hit" 1 (Qcache.hits q);
  (* returned models are fresh copies: mutating one must not poison the cache *)
  Hashtbl.reset m2;
  (match Qcache.solve q ~hint cs with
  | Solver.Sat m3 ->
    Alcotest.(check (list (pair int int64))) "cache unpoisoned" (env_bindings m1)
      (env_bindings m3)
  | _ -> Alcotest.fail "third solve should be sat")

let test_qcache_canonicalization () =
  let q = Qcache.create () in
  let x = Sym.Var (Sym.var ~name:"qc.canon" ~width:8) in
  let a = { Path.expr = Sym.Binop (Sym.Ugt, x, Sym.const ~width:8 3L); expected_nonzero = true } in
  let b = { Path.expr = Sym.Binop (Sym.Ult, x, Sym.const ~width:8 100L); expected_nonzero = true } in
  let hint = Hashtbl.create 0 in
  ignore (Qcache.solve q ~hint [ a; b ]);
  (* permuted and duplicated conjunctions canonicalize to the same key *)
  ignore (Qcache.solve q ~hint [ b; a ]);
  ignore (Qcache.solve q ~hint [ a; b; a ]);
  Alcotest.(check int) "one miss" 1 (Qcache.misses q);
  Alcotest.(check int) "two hits" 2 (Qcache.hits q);
  Alcotest.(check int) "one entry" 1 (Qcache.size q)

let test_qcache_unsat_cached () =
  let q = Qcache.create () in
  (* variable-free contradiction: 0 must be nonzero *)
  let cs = [ { Path.expr = Sym.const ~width:8 0L; Path.expected_nonzero = true } ] in
  let hint = Hashtbl.create 0 in
  Alcotest.(check bool) "unsat" true (Qcache.solve q ~hint cs = Solver.Unsat);
  Alcotest.(check bool) "unsat again" true (Qcache.solve q ~hint cs = Solver.Unsat);
  Alcotest.(check int) "cached" 1 (Qcache.hits q)

let test_qcache_hit_rate () =
  let q = Qcache.create () in
  Alcotest.(check (float 0.0)) "empty" 0.0 (Qcache.hit_rate q);
  let cs = constraints_gt ~name:"qc.rate" 5L in
  let hint = Hashtbl.create 0 in
  ignore (Qcache.solve q ~hint cs);
  ignore (Qcache.solve q ~hint cs);
  ignore (Qcache.solve q ~hint cs);
  Alcotest.(check (float 1e-9)) "2/3" (2.0 /. 3.0) (Qcache.hit_rate q)

let test_qcache_prefix_priming () =
  let q = Qcache.create () in
  let x = Sym.var ~name:"qc.pfx" ~width:8 in
  let xe = Sym.Var x in
  let a = { Path.expr = Sym.Binop (Sym.Ugt, xe, Sym.const ~width:8 10L); expected_nonzero = true } in
  let b = { Path.expr = Sym.Binop (Sym.Ult, xe, Sym.const ~width:8 100L); expected_nonzero = true } in
  let extend = { Path.expr = Sym.Binop (Sym.Eq, xe, Sym.const ~width:8 42L); expected_nonzero = true } in
  let hint = Hashtbl.create 0 in
  (* seed the cache with the shorter query, then extend it: the longer
     query misses on its full key but finds the cached [a; b] model as a
     list-prefix and primes the incremental solver with it *)
  (match Qcache.solve q ~hint [ a; b ] with
  | Solver.Sat _ -> ()
  | _ -> Alcotest.fail "prefix query should be sat");
  Alcotest.(check int) "no prefix hit yet" 0 (Qcache.prefix_hits q);
  (match Qcache.solve q ~hint [ a; b; extend ] with
  | Solver.Sat env ->
    Alcotest.(check bool) "model holds" true (Solver.holds_all env [ a; b; extend ])
  | _ -> Alcotest.fail "extended query should be sat");
  Alcotest.(check int) "prefix primed" 1 (Qcache.prefix_hits q);
  (* a cached-unsat prefix refutes any extension outright *)
  let contradiction =
    [ { Path.expr = Sym.const ~width:8 0L; Path.expected_nonzero = true } ]
  in
  Alcotest.(check bool) "unsat cached" true
    (Qcache.solve q ~hint contradiction = Solver.Unsat);
  Alcotest.(check bool) "unsat prefix refutes extension" true
    (Qcache.solve q ~hint (contradiction @ [ a ]) = Solver.Unsat)

let test_qcache_solve_inc_caches () =
  let q = Qcache.create () in
  let x = Sym.var ~name:"qc.inc" ~width:8 in
  let xe = Sym.Var x in
  let p1 = { Path.expr = Sym.Binop (Sym.Ugt, xe, Sym.const ~width:8 10L); expected_nonzero = true } in
  let flipped = { Path.expr = Sym.Binop (Sym.Ult, xe, Sym.const ~width:8 100L); expected_nonzero = true } in
  let parent : Sym.env = Hashtbl.create 1 in
  Hashtbl.replace parent x.Sym.id 50L;
  (match Qcache.solve_inc q ~parent ~prefix:[ p1 ] [ flipped ] with
  | Solver.Sat env ->
    Alcotest.(check bool) "model holds" true (Solver.holds_all env [ p1; flipped ])
  | _ -> Alcotest.fail "expected sat");
  Alcotest.(check int) "first call misses" 1 (Qcache.misses q);
  (* the same conjunction — whether asked incrementally or not — now hits *)
  (match Qcache.solve q ~hint:(Hashtbl.create 0) [ p1; flipped ] with
  | Solver.Sat _ -> ()
  | _ -> Alcotest.fail "expected cached sat");
  Alcotest.(check int) "full-key hit" 1 (Qcache.hits q)

(* ---- Vcache ---- *)

let test_vcache_hit_and_version_invalidation () =
  let v : (string, int) Vcache.t = Vcache.create () in
  Alcotest.(check (option int)) "cold" None (Vcache.find v ~version:0 "k");
  Vcache.store v ~version:0 "k" 42;
  Alcotest.(check (option int)) "same-version hit" (Some 42) (Vcache.find v ~version:0 "k");
  (* the authoritative state moved: the entry is stale, evicted on sight *)
  Alcotest.(check (option int)) "new version misses" None (Vcache.find v ~version:1 "k");
  Alcotest.(check int) "stale entry evicted" 0 (Vcache.size v);
  Vcache.store v ~version:1 "k" 7;
  Alcotest.(check (option int)) "restored at the new version" (Some 7)
    (Vcache.find v ~version:1 "k");
  Alcotest.(check int) "hits" 2 (Vcache.hits v);
  Alcotest.(check int) "misses" 2 (Vcache.misses v);
  Alcotest.(check (float 1e-9)) "hit rate" 0.5 (Vcache.hit_rate v)

let test_vcache_first_writer_wins_same_version () =
  let v : (int, string) Vcache.t = Vcache.create ~shards:1 () in
  Vcache.store v ~version:3 1 "first";
  Vcache.store v ~version:3 1 "second";
  Alcotest.(check (option string)) "first writer kept" (Some "first")
    (Vcache.find v ~version:3 1);
  (* a newer version replaces, not ties *)
  Vcache.store v ~version:4 1 "fresh";
  Alcotest.(check (option string)) "stale replaced" (Some "fresh")
    (Vcache.find v ~version:4 1)

let test_vcache_concurrent_store_find () =
  let v : (int, int) Vcache.t = Vcache.create () in
  let keys = 100 in
  Pool.run ~jobs:4 (fun _w ->
      for k = 0 to keys - 1 do
        (match Vcache.find v ~version:0 k with
        | Some cached -> Alcotest.(check int) "stable value" (k * 2) cached
        | None -> Vcache.store v ~version:0 k (k * 2))
      done);
  Alcotest.(check int) "all keys resident" keys (Vcache.size v);
  for k = 0 to keys - 1 do
    Alcotest.(check (option int)) "value intact" (Some (k * 2)) (Vcache.find v ~version:0 k)
  done

(* ---- run_parallel vs sequential ---- *)

(* The examples/coverage.ml program: a realistic BGP import filter with
   prefix-set, MED, path-length and origin branches. *)
let filter_program =
  let filter_text =
    {|
    if net ~ [ 10.0.0.0/8{8,24}, 172.16.0.0/12{12,24} ] then {
      if bgp_med > 50 then {
        bgp_local_pref = 80;
        accept;
      }
      bgp_local_pref = 120;
      accept;
    }
    if bgp_path.len > 6 then reject;
    if bgp_origin = 2 then reject;
    accept;
    |}
  in
  let filter = Dice_bgp.Config_parser.parse_filter ~name:"exec_test" filter_text in
  let base_route =
    Dice_bgp.Route.make ~origin:Dice_bgp.Attr.Igp
      ~as_path:[ Dice_inet.Asn.Path.Seq [ 64501; 64502 ] ]
      ~med:(Some 10)
      ~next_hop:(Dice_inet.Ipv4.of_string "192.0.2.1")
      ()
  in
  fun ctx ->
    let cr =
      Dice_core.Symbolize.croute ctx ~tag:"in"
        ~prefix:(Dice_inet.Prefix.of_string "10.1.2.0/24")
        ~route:base_route
    in
    let cr =
      Dice_bgp.Croute.with_med cr
        (Engine.input ctx ~name:"in.med" ~width:32 ~default:10L)
    in
    ignore (Dice_bgp.Filter_interp.run ctx ~source_as:64501 ~local_as:64510 filter cr)

(* The bench F1 program: same route, a third prefix-set pattern, no
   path-length branch. *)
let bench_f1_program =
  let filter_text =
    {|
    if net ~ [ 10.0.0.0/8{8,24}, 172.16.0.0/12{12,24}, 192.168.0.0/16+ ] then {
      if bgp_med > 50 then { bgp_local_pref = 80; accept; }
      bgp_local_pref = 120;
      accept;
    }
    if bgp_origin = 2 then reject;
    accept;
    |}
  in
  let filter = Dice_bgp.Config_parser.parse_filter ~name:"exec_f1" filter_text in
  let base_route =
    Dice_bgp.Route.make ~origin:Dice_bgp.Attr.Igp
      ~as_path:[ Dice_inet.Asn.Path.Seq [ 64501; 64502 ] ]
      ~med:(Some 10)
      ~next_hop:(Dice_inet.Ipv4.of_string "192.0.2.1")
      ()
  in
  fun ctx ->
    let cr =
      Dice_core.Symbolize.croute ctx ~tag:"f1"
        ~prefix:(Dice_inet.Prefix.of_string "10.1.2.0/24")
        ~route:base_route
    in
    let cr =
      Dice_bgp.Croute.with_med cr
        (Engine.input ctx ~name:"f1.med" ~width:32 ~default:10L)
    in
    ignore (Dice_bgp.Filter_interp.run ctx ~source_as:64501 ~local_as:64510 filter cr)

(* A saturating budget: sequential DFS on these programs exhausts its
   worklist well under 64 executions, so at 256 both explorers reach the
   fixed point and the determinism contract applies. *)
let saturating_config strategy =
  { E.default_config with E.strategy; max_runs = 256 }

let check_matches_sequential program =
  List.iter
    (fun strategy ->
      let config = saturating_config strategy in
      let seq = E.explore ~config program in
      let par = Explorer.run_parallel ~config ~jobs:4 program in
      let name = Strategy.to_string strategy in
      Alcotest.(check int)
        (name ^ ": distinct paths")
        seq.E.distinct_paths par.E.distinct_paths;
      Alcotest.(check (list (pair int bool)))
        (name ^ ": branch-coverage set")
        (Coverage.snapshot seq.E.coverage)
        (Coverage.snapshot par.E.coverage))
    [ Strategy.Dfs; Strategy.Generational; Strategy.Random_negation 7L;
      Strategy.Cover_new ]

let test_parallel_matches_sequential () = check_matches_sequential filter_program
let test_parallel_matches_sequential_f1 () = check_matches_sequential bench_f1_program

let test_parallel_single_job_matches () =
  let config = saturating_config Strategy.Dfs in
  let seq = E.explore ~config filter_program in
  let par = Explorer.run_parallel ~config ~jobs:1 filter_program in
  Alcotest.(check int) "distinct paths" seq.E.distinct_paths par.E.distinct_paths;
  Alcotest.(check (list (pair int bool)))
    "coverage" (Coverage.snapshot seq.E.coverage) (Coverage.snapshot par.E.coverage)

let test_parallel_report_consistent () =
  let config = saturating_config Strategy.Dfs in
  let par = Explorer.run_parallel ~config ~jobs:4 filter_program in
  Alcotest.(check int) "executions = |runs|" par.E.executions
    (List.length par.E.runs);
  Alcotest.(check (list int)) "stable 0..n-1 run indices"
    (List.init par.E.executions Fun.id)
    (List.map (fun (r : E.run) -> r.E.index) par.E.runs);
  Alcotest.(check int) "attempt outcomes partition"
    par.E.negations_attempted
    (par.E.negations_sat + par.E.negations_unsat + par.E.negations_gave_up);
  Alcotest.(check bool) "budget respected" true (par.E.executions <= 256)

let test_parallel_max_runs_respected () =
  let config = { E.default_config with E.max_runs = 4 } in
  let par = Explorer.run_parallel ~config ~jobs:4 filter_program in
  Alcotest.(check bool) "bounded" true (par.E.executions <= 4)

let test_parallel_shared_qcache_hits () =
  let q = Qcache.create () in
  let config = saturating_config Strategy.Dfs in
  ignore (Explorer.run_parallel ~config ~qcache:q ~jobs:2 filter_program);
  let misses_first = Qcache.misses q in
  ignore (Explorer.run_parallel ~config ~qcache:q ~jobs:2 filter_program);
  Alcotest.(check bool) "second exploration reuses cached queries" true
    (Qcache.hits q > 0);
  Alcotest.(check bool) "hit rate in range" true
    (Qcache.hit_rate q >= 0.0 && Qcache.hit_rate q <= 1.0);
  Alcotest.(check bool) "first pass did real solves" true (misses_first > 0)

let suite =
  [ ("pool map preserves order", `Quick, test_pool_map_order);
    ("pool runs every worker", `Quick, test_pool_run_all_workers);
    ("pool propagates exceptions", `Quick, test_pool_exception_propagates);
    ("pool+jobq: jobs run exactly once", `Quick, test_pool_jobs_exactly_once);
    ("jobq fifo order", `Quick, test_jobq_fifo_order);
    ("jobq lifo order", `Quick, test_jobq_lifo_order);
    ("jobq close drops work", `Quick, test_jobq_close_drops);
    ("jobq empty pop returns", `Quick, test_jobq_empty_pop);
    ("dedup single winner per key", `Quick, test_dedup_claim_once_concurrent);
    ("qcache identical models", `Quick, test_qcache_identical_models);
    ("qcache canonicalization", `Quick, test_qcache_canonicalization);
    ("qcache caches unsat", `Quick, test_qcache_unsat_cached);
    ("qcache hit rate", `Quick, test_qcache_hit_rate);
    ("qcache prefix priming", `Quick, test_qcache_prefix_priming);
    ("qcache solve_inc caches", `Quick, test_qcache_solve_inc_caches);
    ("vcache hit + version invalidation", `Quick, test_vcache_hit_and_version_invalidation);
    ("vcache first writer wins per version", `Quick,
      test_vcache_first_writer_wins_same_version);
    ("vcache concurrent store/find", `Quick, test_vcache_concurrent_store_find);
    ("parallel matches sequential (all strategies)", `Quick,
      test_parallel_matches_sequential);
    ("parallel matches sequential (bench F1 program)", `Quick,
      test_parallel_matches_sequential_f1);
    ("parallel jobs=1 matches sequential", `Quick, test_parallel_single_job_matches);
    ("parallel report consistent", `Quick, test_parallel_report_consistent);
    ("parallel max_runs respected", `Quick, test_parallel_max_runs_respected);
    ("parallel shared qcache hits", `Quick, test_parallel_shared_qcache_hits)
  ]
