let () =
  Alcotest.run "dice"
    [ ("rng", Test_rng.suite);
      ("util", Test_util.suite);
      ("inet", Test_inet.suite);
      ("trie", Test_trie.suite);
      ("wire", Test_wire.suite);
      ("sym", Test_sym.suite);
      ("solver", Test_solver.suite);
      ("engine", Test_engine.suite);
      ("explorer", Test_explorer.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("sim", Test_sim.suite);
      ("attr", Test_attr.suite);
      ("msg", Test_msg.suite);
      ("route/decision", Test_route_decision.suite);
      ("fsm", Test_fsm.suite);
      ("filter", Test_filter.suite);
      ("intent", Test_intent.suite);
      ("router", Test_router.suite);
      ("trace", Test_trace.suite);
      ("core", Test_core.suite);
      ("integration", Test_integration.suite);
      ("probe-wire", Test_probe_wire.suite);
      ("speaker", Test_speaker.suite);
      ("panel", Test_panel.suite);
      ("probe-rpc", Test_probe_rpc.suite);
      ("health", Test_health.suite);
      ("chaos", Test_chaos.suite);
      ("distributed", Test_distributed.suite);
      ("online", Test_online.suite);
      ("croute/config", Test_croute.suite);
      ("router-node", Test_router_node.suite);
      ("properties", Test_props.suite);
      ("lincons/json", Test_lincons_json.suite);
      ("edges", Test_edges.suite);
      ("exec", Test_exec.suite)
    ]
