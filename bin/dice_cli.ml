(* The dice command-line tool: generate traces, run the testbed, and
   detect route leaks with online exploration. *)

open Cmdliner
open Dice_inet
open Dice_bgp
open Dice_core
module Threerouter = Dice_topology.Threerouter

(* Figure-2 addressing, resolved through the topology spec *)
let tr_f2_spec = Threerouter.spec Threerouter.Correct
let tr_customer_addr = Dice_topology.Topology.Spec.address tr_f2_spec ~of_:"customer" ~toward:"provider"
let tr_internet_addr = Dice_topology.Topology.Spec.address tr_f2_spec ~of_:"internet" ~toward:"provider"
let tr_provider_internet_side = Dice_topology.Topology.Spec.address tr_f2_spec ~of_:"provider" ~toward:"internet"


(* ---------------- shared arguments ---------------- *)

let seed_arg =
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic RNG seed.")

let prefixes_arg =
  Arg.(
    value
    & opt int 5000
    & info [ "prefixes" ] ~docv:"N"
        ~doc:"Number of prefixes in the synthetic full-table dump.")

let filtering_arg =
  let filtering_conv =
    Arg.enum
      [ ("correct", Threerouter.Correct);
        ("partial", Threerouter.Partially_correct);
        ("missing", Threerouter.Missing) ]
  in
  Arg.(
    value
    & opt filtering_conv Threerouter.Partially_correct
    & info [ "filtering" ] ~docv:"MODE"
        ~doc:"Customer route filtering at the provider: correct, partial or missing.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit a machine-readable JSON report.")

let runs_arg =
  Arg.(
    value
    & opt int 256
    & info [ "runs" ] ~docv:"N" ~doc:"Exploration budget: program executions per seed.")

let jobs_arg =
  Arg.(
    value
    & opt int (Dice_exec.Pool.available_parallelism ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel exploration (default: what the \
           machine offers). 1 disables parallelism.")

let agents_arg =
  Arg.(
    value
    & opt int 0
    & info [ "agents" ] ~docv:"N"
        ~doc:
          "Simulated cooperating remote domains (paper \u{00a7}2.4): each is an \
           upstream router with a private table, probed across the domain \
           boundary through the narrow verdict interface, $(b,--jobs) probes \
           at a time. 0 disables cross-domain probing.")

let loss_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "loss" ] ~docv:"P"
        ~doc:
          "Probability each probe frame is dropped on the inter-domain link \
           (remote transport only). The RPC layer must degrade, never hang.")

let dup_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "dup" ] ~docv:"P"
        ~doc:
          "Probability each probe frame is duplicated on the inter-domain link \
           (remote transport only). Server-side request dedup keeps probe \
           execution at-most-once.")

let reorder_arg =
  Arg.(
    value
    & opt int 0
    & info [ "reorder" ] ~docv:"W"
        ~doc:
          "Reorder window on the inter-domain link: each frame may be held back \
           behind up to $(docv) later sends (remote transport only).")

let speaker_arg =
  Arg.(
    value
    & opt (enum (List.map (fun n -> (n, n)) Speakers.names)) "bird"
    & info [ "speaker" ] ~docv:"IMPL"
        ~doc:
          "BGP implementation behind each cooperating agent: $(b,bird) (the \
           instrumented reference), $(b,quagga) or $(b,xorp) (the heterogeneous \
           implementations — different RIB layouts and decision tie-breaking). \
           All answer the same probe frames; mixing implementations across \
           domains is the paper's heterogeneous setup.")

let panel_arg =
  Arg.(
    value
    & opt (some (list (enum (List.map (fun n -> (n, n)) Speakers.names)))) None
    & info [ "panel" ] ~docv:"IMPL,IMPL,..."
        ~doc:
          "Run an N-way differential panel beside exploration: the listed \
           implementations (e.g. $(b,bird,quagga,xorp)) are seeded with \
           identical state and every exploration message is probed at all of \
           them; verdict disagreements are majority-voted to name the outlier \
           implementation(s). Needs at least two members.")

let intent_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "intent" ] ~docv:"FILE"
        ~doc:
          "Configure the $(b,--panel) members from a dialect-neutral operator \
           intent file instead of shared config text: each member renders \
           $(docv) through its own dialect translator (BIRD filters, Quagga \
           route-maps + prefix-lists, XORP policy terms) and runs what its \
           own interpreter parses back, documented quirks included — the \
           panel then differentially tests the filter interpreters \
           themselves, not just the decision processes.")

let minimize_arg =
  Arg.(
    value & flag
    & info [ "minimize" ]
        ~doc:
          "Delta-debug each distinct panel divergence down to a minimal update \
           schedule and write a replayable repro artifact per divergence (see \
           $(b,--repro-out) and the $(b,replay-divergence) command).")

let repro_out_arg =
  Arg.(
    value
    & opt string "dice-repro"
    & info [ "repro-out" ] ~docv:"PREFIX"
        ~doc:"Filename prefix for $(b,--minimize) artifacts ($(docv)-N.repro).")

let fault_seed_arg =
  Arg.(
    value
    & opt int64 42L
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:
          "Seed for the link-fault RNG stream: equal seeds replay identical \
           drop/duplicate/reorder schedules.")

let crash_rate_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "crash-rate" ] ~docv:"P"
        ~doc:
          "Probability that a frame arriving at a cooperating domain's node \
           crashes it (the frame is buffered, not lost). Crashed nodes restart \
           after $(b,--crash-downtime) and rebuild their speaker from snapshot \
           + journal. Requires $(b,--transport remote).")

let crash_downtime_arg =
  Arg.(
    value
    & opt float 0.25
    & info [ "crash-downtime" ] ~docv:"SECONDS"
        ~doc:"Virtual seconds a crashed node stays down before its automatic restart.")

let crash_seed_arg =
  Arg.(
    value
    & opt int64 Dice_sim.Network.default_crash_seed
    & info [ "crash-seed" ] ~docv:"SEED"
        ~doc:
          "Seed for the node-crash RNG stream (distinct from $(b,--fault-seed), \
           so adding crashes does not reshuffle link faults): equal seeds \
           replay identical crash schedules.")

(* A cooperating upstream in another administrative domain: reachable at
   the provider's internet peering, holding a private table (export none
   toward the provider) that only remote probing can check against. Each
   upstream routes different slices of 198.0.0.0/8 — the space the
   partially-correct filter leaks. *)
let mk_remote_agents ~speaker n =
  List.init n (fun i ->
      let collector = Ipv4.of_string "10.0.3.2" in
      (* dialect-neutral intent instead of any one implementation's config
         text: create_exn realizes it through the chosen implementation's
         own translator *)
      let intent =
        Intent.make
          ~router_id:(Ipv4.of_string "10.0.2.2")
          ~local_as:(Threerouter.internet_as + i)
          ~sessions:
            [ Intent.session "provider" ~export:Intent.Block
                ~neighbor:tr_provider_internet_side
                ~remote_as:Threerouter.provider_as;
              Intent.session "collector" ~neighbor:collector ~remote_as:(64801 + i) ]
          ()
      in
      (* any registered implementation serves: establishment and feeding go
         through the SPEAKER interface, which hides whether sessions come up
         by FSM handshake (bird) or administratively (quagga/xorp) *)
      let sp = Speakers.create_exn speaker (Speaker.Intent intent) in
      Speaker.establish sp ~peer:tr_provider_internet_side;
      Speaker.establish sp ~peer:collector;
      List.iter
        (fun (prefix, origin) ->
          let route =
            Route.make ~origin:Attr.Igp
              ~as_path:[ Asn.Path.Seq [ 64801 + i; origin ] ]
              ~next_hop:collector ()
          in
          ignore
            (Speaker.feed sp ~peer:collector
               (Msg.Update
                  { withdrawn = []; attrs = Route.to_attrs route; nlri = [ Prefix.of_string prefix ] })))
        [ (Printf.sprintf "198.%d.0.0/16" (16 * i), 64900 + i);
          (Printf.sprintf "198.%d.0.0/14" (64 + (4 * i)), 64950 + i) ];
      Distributed.agent
        ~name:(Printf.sprintf "upstream-%d-%s" i (Speaker.id sp))
        ~addr:tr_internet_addr
        ~explorer_addr:tr_provider_internet_side
        (Distributed.Local sp))

(* Remote transport: put each agent on the simulated network as a probe
   server and hand the orchestrator wire endpoints instead of speakers.
   From here on, nothing outside the agents can reach their speakers —
   probes travel as frames over the (lossy, latent) links.

   With [crash_tolerant], each serving node also gets the full recovery
   stack: a {!Distributed.Recovery} harness wired as its restart hook
   (rebuild the speaker from snapshot + journal on every restart),
   heartbeats toward the exploring client (the liveness signal the
   endpoint's health monitor reads), and endpoints configured with
   jittered backoff plus a circuit breaker so a down node's probes fail
   fast instead of burning the full timeout x retries budget. *)
let remotify ?(crash_tolerant = false) net serving_agents =
  let cl = Probe_rpc.client net ~name:"explorer-probe" in
  let config =
    if crash_tolerant then
      { Probe_rpc.default_config with
        Probe_rpc.jitter = 0.1;
        breaker_threshold = 2;
        breaker_cooldown = 0.5;
      }
    else Probe_rpc.default_config
  in
  List.map
    (fun a ->
      let srv = Distributed.serve net a in
      Dice_sim.Network.connect net (Probe_rpc.client_node cl)
        (Probe_rpc.server_node srv) ~latency:0.005;
      if crash_tolerant then begin
        let harness = Distributed.Recovery.attach a in
        Dice_sim.Network.set_restart_hook net (Probe_rpc.server_node srv)
          (fun () -> Distributed.Recovery.crash_restart harness);
        let _stop : unit -> unit =
          Probe_rpc.start_heartbeats ~until:3600.0 srv
            ~to_:(Probe_rpc.client_node cl) ~period:0.05
            ~incarnation:(fun () -> Distributed.Recovery.incarnation harness)
            ~state_version:(fun () -> Distributed.Recovery.state_version harness)
        in
        ()
      end;
      Distributed.agent
        ~name:(Distributed.agent_name a)
        ~addr:(Distributed.agent_addr a)
        ~explorer_addr:tr_provider_internet_side
        (Distributed.Remote
           (Probe_rpc.endpoint ~config cl ~server:(Probe_rpc.server_node srv))))
    serving_agents

(* The differential panel: one speaker per listed implementation, every
   member configured and seeded identically, all reachable at the
   internet peering. The seed state includes an incumbent for the
   explored customer prefix that ties with the provider's announcement
   on every decision step up to the tie-breaks — learned from a
   collector session with a *lower* next hop, so implementations that
   consult IGP cost before peer identity (xorp) keep the incumbent
   while peer-identity tie-breakers (bird, quagga) switch to the
   explored route. The returned config source and setup schedule are
   what a replay artifact needs to rebuild the panel from scratch.

   With [?intent], the members are configured from a dialect-neutral
   intent file instead of shared config text: each member renders the
   intent through its own dialect translator and runs what its own
   interpreter parses back, quirks included — the panel then
   differentially tests the filter interpreters themselves. *)
let read_text file = In_channel.with_open_bin file In_channel.input_all

let mk_panel_agents ?intent ~panel () =
  let collector = Ipv4.of_string "10.0.3.2" in
  let source, art_source =
    match intent with
    | Some file ->
      let text = read_text file in
      (Speaker.Intent (Intent.parse text), Panel.Artifact.Intent_text text)
    | None ->
      let config_src =
        Printf.sprintf
          {|
          router id 10.0.2.2;
          local as %d;
          protocol bgp provider { neighbor 10.0.2.1 as %d; import all; export none; }
          protocol bgp collector { neighbor 10.0.3.2 as %d; import all; export all; }
          |}
          Threerouter.internet_as Threerouter.provider_as 64801
      in
      (Speaker.Config (Config_parser.parse config_src), Panel.Artifact.Config_text config_src)
  in
  let setup =
    List.map
      (fun (prefix, origin, path, next_hop) ->
        ( collector,
          Msg.Update
            {
              Msg.withdrawn = [];
              attrs =
                Route.to_attrs
                  (Route.make ~origin ~as_path:[ Asn.Path.Seq path ] ~next_hop ());
              nlri = [ Prefix.of_string prefix ];
            } ))
      (* one private slice (foreign origin, for coverage verdicts) plus
         tie-incumbents across the space exploration mutates the
         customer announcement into — matching origin and path length,
         so only the tie-breaks decide *)
      (( "198.0.0.0/16", Attr.Igp, [ 64801; 64900 ], collector)
      :: List.map
           (fun (prefix, origin) ->
             ( prefix,
               origin,
               [ 64701; Threerouter.customer_as ],
               Ipv4.of_string "10.0.0.1" ))
           [ ("203.0.113.0/24", Attr.Igp);
             ("203.0.113.0/28", Attr.Igp);
             ("198.0.0.0/8", Attr.Igp);
             ("198.51.100.0/22", Attr.Egp) ])
  in
  let agents =
    List.map
      (fun name ->
        let sp = Speakers.create_exn name source in
        Speaker.establish sp ~peer:tr_provider_internet_side;
        Speaker.establish sp ~peer:collector;
        List.iter (fun (peer, msg) -> ignore (Speaker.feed sp ~peer msg)) setup;
        (* named by implementation so replayed artifacts produce the
           same divergence signatures (Panel.Artifact.build does too) *)
        Distributed.agent ~name ~addr:tr_internet_addr
          ~explorer_addr:tr_provider_internet_side
          (Distributed.Local sp))
      panel
  in
  (agents, art_source, setup)

let trace_of ~seed ~prefixes =
  Dice_trace.Gen.generate
    { Dice_trace.Gen.default_params with Dice_trace.Gen.seed; n_prefixes = prefixes }

let build_loaded ~filtering ~seed ~prefixes =
  let topo = Threerouter.build filtering in
  Threerouter.start topo;
  let trace = trace_of ~seed ~prefixes in
  let n = Threerouter.load_table topo trace in
  (topo, trace, n)

let customer_route () =
  Route.make ~origin:Attr.Igp
    ~as_path:[ Asn.Path.Seq [ Threerouter.customer_as ] ]
    ~next_hop:tr_customer_addr ()

(* ---------------- gen-trace ---------------- *)

let gen_trace out seed prefixes duration rate =
  let trace =
    Dice_trace.Gen.generate
      { Dice_trace.Gen.default_params with
        Dice_trace.Gen.seed;
        n_prefixes = prefixes;
        duration;
        update_rate = rate;
      }
  in
  Dice_trace.Mrt.save out trace;
  Printf.printf "wrote %s: %d dump entries, %d events over %.0f s\n" out
    (Array.length trace.Dice_trace.Gen.dump)
    (Array.length trace.Dice_trace.Gen.events)
    trace.Dice_trace.Gen.duration;
  0

let gen_trace_cmd =
  let out =
    Arg.(
      value & opt string "trace.mrt"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let duration =
    Arg.(
      value & opt float 900.0
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Update-trace duration.")
  in
  let rate =
    Arg.(
      value & opt float 0.3
      & info [ "rate" ] ~docv:"UPD/S" ~doc:"Mean update rate in the tail.")
  in
  Cmd.v
    (Cmd.info "gen-trace" ~doc:"Generate a RouteViews-style synthetic trace (MRT-like file).")
    Term.(const gen_trace $ out $ seed_arg $ prefixes_arg $ duration $ rate)

(* ---------------- trace-info ---------------- *)

let trace_info file =
  let trace = Dice_trace.Mrt.load file in
  let lens = Hashtbl.create 8 in
  Array.iter
    (fun (e : Dice_trace.Gen.entry) ->
      let l = Prefix.len e.Dice_trace.Gen.prefix in
      Hashtbl.replace lens l (1 + Option.value (Hashtbl.find_opt lens l) ~default:0))
    trace.Dice_trace.Gen.dump;
  Printf.printf "collector AS: %d\n" trace.Dice_trace.Gen.collector_as;
  Printf.printf "dump entries: %d\n" (Array.length trace.Dice_trace.Gen.dump);
  Printf.printf "events: %d over %.0f s\n"
    (Array.length trace.Dice_trace.Gen.events)
    trace.Dice_trace.Gen.duration;
  print_endline "prefix length histogram:";
  Hashtbl.fold (fun l c acc -> (l, c) :: acc) lens []
  |> List.sort compare
  |> List.iter (fun (l, c) -> Printf.printf "  /%-2d %d\n" l c);
  0

let trace_info_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Trace file.")
  in
  Cmd.v
    (Cmd.info "trace-info" ~doc:"Summarize a trace file.")
    Term.(const trace_info $ file)

(* ---------------- run ---------------- *)

let run_testbed filtering seed prefixes =
  let _, _, n = build_loaded ~filtering ~seed ~prefixes in
  Printf.printf "topology up (filtering=%s); provider Loc-RIB: %d routes\n"
    (Threerouter.filtering_to_string filtering)
    n;
  0

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Bring up the 3-router testbed and load a full table.")
    Term.(const run_testbed $ filtering_arg $ seed_arg $ prefixes_arg)

(* ---------------- gen-topology / fleet mode ---------------- *)

module Spec = Dice_topology.Topology.Spec
module Topo_gen = Dice_topology.Gen
module Fleet = Dice_topology.Fleet

let resolve_topology src =
  match String.split_on_char ':' src with
  | [ "gen"; seed; n ] ->
    let seed =
      try Int64.of_string seed
      with _ -> invalid_arg (Printf.sprintf "--topology gen: bad seed %S" seed)
    in
    let domains =
      try int_of_string n
      with _ -> invalid_arg (Printf.sprintf "--topology gen: bad domain count %S" n)
    in
    Topo_gen.generate ~seed ~domains ()
  | [ _ ] -> Spec.parse_file src
  | _ -> invalid_arg (Printf.sprintf "--topology: expected FILE or gen:SEED:N, got %S" src)

let gen_topology domains seed out =
  let spec = Topo_gen.generate ~seed ~domains () in
  let text = Spec.to_string spec in
  if out = "-" then print_string text
  else begin
    Out_channel.with_open_bin out (fun oc -> Out_channel.output_string oc text);
    Printf.printf "wrote %s: %d domains, %d links (seed %Ld — same seed, same bytes)\n"
      out (List.length spec.Spec.domains) (List.length spec.Spec.links) seed
  end;
  0

let gen_topology_cmd =
  let domains =
    Arg.(
      value & opt int 16
      & info [ "domains" ] ~docv:"N" ~doc:"Number of domains (ASes) to generate.")
  in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file ($(b,-) for stdout).")
  in
  Cmd.v
    (Cmd.info "gen-topology"
       ~doc:
         "Generate a seeded AS-level topology (preferential attachment, \
          customer/provider/peer roles, valley-free policies) in the \
          $(b,--topology) text format. The same seed reproduces the same \
          file byte for byte.")
    Term.(const gen_topology $ domains $ seed_arg $ out)

let run_fleet src seed updates jobs =
  let spec = resolve_topology src in
  let fl = Fleet.realize spec in
  Fleet.establish fl;
  Printf.printf "fleet: %d domains, %d links, speakers [%s]\n"
    (List.length spec.Spec.domains)
    (List.length spec.Spec.links)
    (String.concat ", "
       (List.sort_uniq compare
          (List.map (fun (d : Spec.domain) -> d.Spec.speaker) spec.Spec.domains)));
  let st =
    Fleet.drive ~jobs:(max 1 jobs) ~probe_every:4 ~updates_per_domain:updates ~seed fl
  in
  Printf.printf "stream: fed %d, delivered %d, emitted %d, to collector %d, %d round(s)\n"
    st.Fleet.fed st.Fleet.delivered st.Fleet.emitted st.Fleet.to_collector
    st.Fleet.rounds;
  Printf.printf "probes: %d, probe verdicts: %d\n" st.Fleet.probes st.Fleet.verdicts;
  if st.Fleet.dropped_down > 0 || st.Fleet.skipped_feeds > 0 then
    Printf.printf "down domains: %d message(s) dropped, %d feed(s) withheld\n"
      st.Fleet.dropped_down st.Fleet.skipped_feeds;
  (match
     List.find_opt (fun (d : Spec.domain) -> d.Spec.speaker = "bird") spec.Spec.domains
   with
  | Some d ->
    let shared, total = Fleet.rib_sharing fl ~domain:d.Spec.name in
    if total > 0 then
      Printf.printf "rib sharing (%s): %d/%d trie nodes shared with an explorer clone\n"
        d.Spec.name shared total
  | None -> ());
  Fleet.checkpoint_all ~clones:1 fl;
  let store = Fleet.store fl in
  Printf.printf
    "checkpoint store: %d capture(s), %.1f%% pages deduped, %d bytes resident\n"
    (Dice_checkpoint.Store.captures store)
    (100.0 *. Dice_checkpoint.Store.dedup_ratio store)
    (Dice_checkpoint.Store.resident_bytes store);
  Fleet.release_checkpoints fl;
  if st.Fleet.rounds < 64 then 0 else 1

(* ---------------- detect-leaks ---------------- *)

let detect_leaks_testbed filtering seed prefixes runs jobs agents speaker panel
    intent minimize repro_out transport loss dup reorder fault_seed crash_rate
    crash_downtime crash_seed json =
  let topo, _, n = build_loaded ~filtering ~seed ~prefixes in
  Printf.printf "table loaded: %d routes; filtering=%s\n" n
    (Threerouter.filtering_to_string filtering);
  if agents > 0 then Printf.printf "cooperating domains run the %s speaker\n" speaker;
  let provider = Threerouter.provider_router topo in
  let serving_agents = mk_remote_agents ~speaker (max 0 agents) in
  let node_faults =
    if crash_rate = 0.0 then None
    else Some (Dice_sim.Faults.node ~crash:crash_rate ~downtime:crash_downtime ())
  in
  let remote_agents =
    match transport with
    | `Local -> serving_agents
    | `Remote ->
      remotify ~crash_tolerant:(node_faults <> None) topo.Threerouter.net
        serving_agents
  in
  let probe_faults =
    if loss = 0.0 && dup = 0.0 && reorder = 0 then None
    else Some (Dice_sim.Faults.make ~drop:loss ~duplicate:dup ~reorder ())
  in
  if probe_faults <> None && transport = `Local then
    prerr_endline
      "note: --loss/--dup/--reorder perturb the probe links; with --transport \
       local there is no wire, so they have no effect";
  if node_faults <> None && transport = `Local then
    prerr_endline
      "note: --crash-rate crashes the cooperating domains' nodes; with \
       --transport local there are no nodes, so it has no effect";
  let hits = ref [] in
  let panel_ctx =
    match panel with
    | None ->
      if intent <> None then
        prerr_endline "note: --intent configures the panel members; without --panel it has no effect";
      None
    | Some members when List.length members < 2 ->
      invalid_arg "--panel needs at least two implementations"
    | Some members ->
      Printf.printf "differential panel: %s\n" (String.concat ", " members);
      Option.iter
        (Printf.printf "panel intent: %s (each member realizes its own dialect)\n")
        intent;
      Some (mk_panel_agents ?intent ~panel:members ())
  in
  let panel_checkers =
    match panel_ctx with
    | None -> []
    | Some (panel_agents, _, _) ->
      [ Panel.hunt ~jobs:(max 1 jobs) ~agents:panel_agents
          ~sink:(fun h -> hits := h :: !hits) () ]
  in
  let cfg =
    { Orchestrator.exploration =
        { Orchestrator.default_exploration with
          Orchestrator.explorer =
            { Dice_concolic.Explorer.default_config with
              Dice_concolic.Explorer.max_runs = runs;
              max_depth = 96;
            };
          jobs = max 1 jobs;
        };
      checkers = Orchestrator.default_cfg.Orchestrator.checkers @ panel_checkers;
      federation = Orchestrator.federation ~agents:remote_agents ~probe_jobs:(max 1 jobs);
      faults =
        Orchestrator.faults ?node:node_faults ~crash_seed ~probe:probe_faults
          ~seed:fault_seed ();
    }
  in
  let dice = Orchestrator.create ~cfg (Speakers.bird provider) in
  Orchestrator.observe dice ~peer:tr_customer_addr
    ~prefix:(Prefix.of_string "203.0.113.0/24")
    ~route:(customer_route ());
  let report = Orchestrator.explore dice in
  if json then print_endline (Dice_util.Json.to_string ~indent:true (Report.report_json report))
  else print_string (Report.to_text report);
  (match panel_ctx with
   | None -> ()
   | Some (panel_agents, panel_source, panel_setup) ->
     (* one hit per distinct divergence signature, in discovery order *)
     let distinct =
       List.fold_left
         (fun acc (h : Panel.hit) ->
           let s = Panel.signature h.Panel.divergence in
           if List.mem_assoc s acc then acc else (s, h) :: acc)
         []
         (List.rev !hits)
       |> List.rev
     in
     Printf.printf "panel: %d divergent probe(s), %d distinct divergence(s)\n"
       (List.length !hits) (List.length distinct);
     List.iter
       (fun (_, (h : Panel.hit)) ->
         Format.printf "%a@." Panel.pp_divergence h.Panel.divergence)
       distinct;
     if minimize then
       List.iteri
         (fun i (signature, (h : Panel.hit)) ->
           let minimal, st =
             Minimize.divergence ~jobs:(max 1 jobs) ~agents:panel_agents h
           in
           Printf.printf
             "minimized %s: %d -> %d message(s), %d attribute shrink(s), %d \
              predicate test(s)\n"
             signature st.Minimize.initial_len st.Minimize.final_len
             st.Minimize.shrunk st.Minimize.tests;
           let artifact =
             {
               Panel.Artifact.speakers =
                 List.map Distributed.agent_name panel_agents;
               source = panel_source;
               setup = panel_setup;
               schedule = minimal;
               signature;
               absent =
                 (match h.Panel.divergence.Panel.quorum with
                 | Panel.Full -> []
                 | Panel.Degraded absent -> absent);
             }
           in
           let file = Printf.sprintf "%s-%d.repro" repro_out (i + 1) in
           Panel.Artifact.save file artifact;
           let replayed =
             Panel.Artifact.replay ~jobs:(max 1 jobs) artifact
           in
           Printf.printf "wrote %s (%d bytes): replay %s\n" file
             (Bytes.length (Panel.Artifact.encode artifact))
             (if Panel.Artifact.reproduces artifact replayed then
                "reproduces the divergence"
              else "DOES NOT reproduce"))
         distinct);
  List.iter
    (fun a ->
      let s = Distributed.stats a in
      Printf.printf
        "remote agent %s: %d probes, %d checkpoint(s), vcache %d hit(s) (%.1f%% hit \
         rate), %d decline(s), %d timeout(s), %d retry(ies)\n"
        (Distributed.agent_name a) s.Distributed.probes s.Distributed.checkpoints
        s.Distributed.vcache_hits
        (100.0 *. s.Distributed.vcache_hit_rate)
        s.Distributed.declines s.Distributed.timeouts s.Distributed.retries)
    remote_agents;
  (* in remote mode the speaker-side figures live with the serving agent *)
  if transport = `Remote then
    List.iter
      (fun a ->
        let s = Distributed.stats a in
        Printf.printf
          "  serving side %s: %d probes answered, %d checkpoint(s), vcache %d hit(s) \
           (%.1f%% hit rate)\n"
          (Distributed.agent_name a) s.Distributed.probes s.Distributed.checkpoints
          s.Distributed.vcache_hits
          (100.0 *. s.Distributed.vcache_hit_rate))
      serving_agents;
  (if transport = `Remote && probe_faults <> None then begin
     let net = topo.Threerouter.net in
     Printf.printf
       "link faults (seed %Ld): %d dropped, %d duplicated, %d reordered, %d \
        corrupted — rerun with the same --fault-seed to replay this schedule\n"
       fault_seed
       (Dice_sim.Network.messages_dropped net)
       (Dice_sim.Network.messages_duplicated net)
       (Dice_sim.Network.messages_reordered net)
       (Dice_sim.Network.messages_corrupted net)
   end);
  (if transport = `Remote && node_faults <> None then begin
     let net = topo.Threerouter.net in
     Printf.printf
       "node crashes (seed %Ld): %d crash(es), %d restart(s), %d frame(s) \
        requeued — rerun with the same --crash-seed to replay this schedule\n"
       crash_seed
       (Dice_sim.Network.node_crashes net)
       (Dice_sim.Network.node_restarts net)
       (Dice_sim.Network.messages_requeued net);
     List.iter
       (fun a ->
         match Distributed.agent_transport a with
         | Distributed.Remote ep ->
           let s = Probe_rpc.stats ep in
           Format.printf
             "  endpoint %s: %d fail-fast decline(s), %d breaker open(s); %a@."
             (Distributed.agent_name a) s.Probe_rpc.fail_fast
             s.Probe_rpc.breaker_opens Health.pp
             (Probe_rpc.endpoint_health ep)
         | Distributed.Local _ -> ())
       remote_agents
   end);
  if Hijack.leakable_summary report.Orchestrator.faults = [] then 0 else 1

let transport_arg =
  Arg.(
    value
    & opt (enum [ ("local", `Local); ("remote", `Remote) ]) `Local
    & info [ "transport" ] ~docv:"MODE"
        ~doc:
          "How exploration reaches the cooperating domains: $(b,local) probes \
           their routers in-process; $(b,remote) puts each agent on the \
           simulated network and probes it with wire frames (latency, \
           timeouts and retries included).")

let detect_leaks topology filtering seed prefixes updates runs jobs agents
    speaker panel intent minimize repro_out transport loss dup reorder
    fault_seed crash_rate crash_downtime crash_seed json =
  match topology with
  | Some src -> run_fleet src seed updates jobs
  | None ->
    detect_leaks_testbed filtering seed prefixes runs jobs agents speaker panel
      intent minimize repro_out transport loss dup reorder fault_seed crash_rate
      crash_downtime crash_seed json

let topology_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "topology" ] ~docv:"FILE|gen:SEED:N"
        ~doc:
          "Fleet mode: instead of the 3-router testbed, instantiate a \
           DiCE-enabled speaker per domain of the given topology (a \
           $(b,gen-topology) file, or $(b,gen:SEED:N) to generate N domains \
           in-process), drive a sustained update stream through the \
           federation on the worker pool, and probe the stream online at \
           each receiving domain's explorer clone.")

let updates_arg =
  Arg.(
    value
    & opt int Fleet.default_updates_per_domain
    & info [ "updates" ] ~docv:"N"
        ~doc:"Fleet mode: update-stream announcements injected per domain.")

let detect_leaks_cmd =
  Cmd.v
    (Cmd.info "detect-leaks"
       ~doc:
         "Run DiCE exploration on the provider and report hijackable prefix ranges \
          (exit status 1 if any are found). With $(b,--agents), exploration \
          outcomes are also probed at simulated cooperating remote domains over \
          the worker pool ($(b,--speaker) picks the BGP implementation they run); with $(b,--transport remote) plus \
          $(b,--loss)/$(b,--dup)/$(b,--reorder), the probe links misbehave \
          deterministically ($(b,--fault-seed)) and the RPC layer must stay \
          at-most-once and hang-free. $(b,--crash-rate) additionally crashes \
          the cooperating nodes on a seeded schedule ($(b,--crash-seed)): \
          crashed agents recover from snapshot + journal, endpoints detect \
          them via heartbeat gaps and fail fast through a circuit breaker \
          while they are down. With $(b,--panel), every exploration \
          message is additionally probed at an N-way differential panel of \
          implementations; $(b,--minimize) delta-debugs each divergence and \
          writes a replayable repro artifact.")
    Term.(
      const detect_leaks $ topology_arg $ filtering_arg $ seed_arg
      $ prefixes_arg $ updates_arg $ runs_arg $ jobs_arg $ agents_arg
      $ speaker_arg $ panel_arg $ intent_arg $ minimize_arg $ repro_out_arg
      $ transport_arg $ loss_arg $ dup_arg $ reorder_arg $ fault_seed_arg
      $ crash_rate_arg $ crash_downtime_arg $ crash_seed_arg $ json_arg)

(* ---------------- replay-divergence ---------------- *)

let replay_loaded file artifact subset jobs =
  Printf.printf "%s: panel [%s], %d setup message(s), %d probe message(s)\n" file
    (String.concat ", " artifact.Panel.Artifact.speakers)
    (List.length artifact.Panel.Artifact.setup)
    (List.length artifact.Panel.Artifact.schedule);
  Printf.printf "expected divergence: %s\n" artifact.Panel.Artifact.signature;
  (match artifact.Panel.Artifact.source with
  | Panel.Artifact.Config_text _ -> ()
  | Panel.Artifact.Intent_text _ ->
    print_endline "configured from operator intent: each member realizes its own dialect");
  (match artifact.Panel.Artifact.absent with
  | [] -> ()
  | absent ->
    Printf.printf
      "degraded capture: [%s] down when recorded; replaying the members that \
       actually voted\n"
      (String.concat ", " absent));
  let divergences =
    Panel.Artifact.replay ?speakers:subset ~jobs:(max 1 jobs) artifact
  in
  List.iter (Format.printf "%a@." Panel.pp_divergence) divergences;
  match subset with
  | Some members ->
    (* a subset replay answers "what do just these members say?" — the
       recorded signature names outliers the subset may not contain, so
       reproduction is not the question being asked *)
    Printf.printf "replayed against [%s]: %d divergence(s)\n"
      (String.concat ", " members) (List.length divergences);
    0
  | None ->
    if Panel.Artifact.reproduces artifact divergences then begin
      print_endline "divergence reproduced";
      0
    end
    else begin
      print_endline "divergence NOT reproduced";
      1
    end

let replay_divergence file subset jobs =
  match
    try Ok (Panel.Artifact.load file) with
    | Sys_error msg -> Error msg
    | Dice_wire.Rbuf.Truncated msg -> Error (file ^ ": malformed artifact: " ^ msg)
  with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok artifact -> replay_loaded file artifact subset jobs

let replay_divergence_cmd =
  let file =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Repro artifact written by detect-leaks --minimize.")
  in
  let subset =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "speakers" ] ~docv:"IMPL,IMPL,..."
          ~doc:
            "Replay against this subset of the artifact's panel instead of all \
             members (reproduction of the recorded signature is only asserted \
             for a full-panel replay).")
  in
  Cmd.v
    (Cmd.info "replay-divergence"
       ~doc:
         "Re-execute a minimized divergence repro: rebuild the recorded panel \
          from the artifact's configuration and setup schedule, probe the \
          minimized update schedule, and check the recorded divergence still \
          appears. A degraded capture (members recorded absent) replays over \
          the members that actually voted. Exit status: 0 if the divergence \
          reproduces (or for any $(b,--speakers) subset replay, which asserts \
          nothing), 1 if a full replay does not reproduce it, 2 if the \
          artifact is unreadable or malformed.")
    Term.(const replay_divergence $ file $ subset $ jobs_arg)

(* ---------------- explore-filter ---------------- *)

let explore_filter file runs jobs incremental =
  let config = Config_parser.parse_file file in
  match config.Config_types.filters with
  | [] ->
    prerr_endline "no filters in configuration";
    1
  | filter :: _ ->
    let route =
      Route.make ~origin:Attr.Igp
        ~as_path:[ Asn.Path.Seq [ 64501 ] ]
        ~med:(Some 10)
        ~next_hop:(Ipv4.of_string "192.0.2.1")
        ()
    in
    let program ctx =
      let cr =
        Symbolize.croute ctx ~tag:"in"
          ~prefix:(Prefix.of_string "192.0.2.0/24")
          ~route
      in
      ignore
        (Filter_interp.run ctx ~source_as:64501
           ~local_as:config.Config_types.local_as filter cr)
    in
    let config =
      { Dice_concolic.Explorer.default_config with
        Dice_concolic.Explorer.max_runs = runs;
        incremental;
      }
    in
    let qcache = Dice_exec.Qcache.create () in
    let report =
      if jobs <= 1 then Dice_concolic.Explorer.explore ~config program
      else Dice_exec.Explorer.run_parallel ~config ~qcache ~jobs program
    in
    Format.printf "%a@." Dice_concolic.Explorer.pp_report report;
    if jobs > 1 then
      Format.printf "solver cache: %d hits, %d misses, %d prefix hits (%.1f%% hit rate)@."
        (Dice_exec.Qcache.hits qcache)
        (Dice_exec.Qcache.misses qcache)
        (Dice_exec.Qcache.prefix_hits qcache)
        (100.0 *. Dice_exec.Qcache.hit_rate qcache);
    0

let explore_filter_cmd =
  let file =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"CONFIG" ~doc:"Router configuration file.")
  in
  let incremental =
    Arg.(
      value & opt bool true
      & info [ "incremental" ]
          ~doc:
            "Solve negations incrementally from the parent run's environment \
             (pass $(b,--incremental=false) to solve every query from scratch, \
             for measurement).")
  in
  Cmd.v
    (Cmd.info "explore-filter"
       ~doc:"Concolically explore the first filter of a configuration file.")
    Term.(const explore_filter $ file $ runs_arg $ jobs_arg $ incremental)

(* ---------------- overhead ---------------- *)

let overhead seed prefixes =
  let topo, trace, n = build_loaded ~filtering:Threerouter.Partially_correct ~seed ~prefixes in
  Printf.printf "table loaded: %d routes\n" n;
  let router = Threerouter.provider_router topo in
  let mgr = Dice_checkpoint.Fork.create () in
  let cp = Dice_checkpoint.Fork.checkpoint mgr ~live_image:(Router.snapshot router) in
  let progress =
    Dice_trace.Replay.feed_events router ~peer:tr_internet_addr
      ~next_hop:tr_internet_addr trace
  in
  let unique, fraction =
    Dice_checkpoint.Fork.checkpoint_stats cp ~live_image:(Router.snapshot router)
  in
  Printf.printf
    "checkpoint: %d unique pages (%.2f%%) after the live router processed %d more \
     updates\n"
    unique (100.0 *. fraction) progress.Dice_trace.Replay.updates_sent;
  0

let overhead_cmd =
  Cmd.v
    (Cmd.info "overhead" ~doc:"Measure checkpoint memory overhead on a loaded router.")
    Term.(const overhead $ seed_arg $ prefixes_arg)

(* ---------------- validate ---------------- *)

let validate_change proposed_file seed prefixes runs jobs json =
  let topo, _, n = build_loaded ~filtering:Threerouter.Partially_correct ~seed ~prefixes in
  Printf.printf "live router: %d routes (partially-correct filtering)\n" n;
  let live = Threerouter.provider_router topo in
  (* an .intent proposal is realized through the live implementation's own
     dialect translator inside Validate.config_change *)
  let proposed =
    if Filename.check_suffix proposed_file ".intent" then
      Speaker.Intent (Intent.parse_file proposed_file)
    else Speaker.Config (Config_parser.parse_file proposed_file)
  in
  let seeds =
    [ { Orchestrator.tag = "observed";
        peer = tr_customer_addr;
        prefix = Prefix.of_string "203.0.113.0/24";
        route = customer_route ();
      } ]
  in
  let cfg =
    { Orchestrator.default_cfg with
      Orchestrator.exploration =
        { Orchestrator.default_exploration with
          Orchestrator.explorer =
            { Dice_concolic.Explorer.default_config with
              Dice_concolic.Explorer.max_runs = runs;
              max_depth = 96;
            };
          jobs = max 1 jobs;
        };
    }
  in
  let c = Validate.config_change ~cfg ~live:(Speakers.bird live) ~proposed ~seeds () in
  if json then print_endline (Dice_util.Json.to_string ~indent:true (Report.comparison_json c))
  else Format.printf "%a@." Validate.pp c;
  match Validate.verdict c with
  | `Safe -> 0
  | `Ineffective -> 0
  | `Harmful -> 1

let validate_cmd =
  let file =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"PROPOSED-CONFIG"
          ~doc:
            "Proposed router configuration file; a $(b,.intent) file is \
             realized through the live implementation's own dialect \
             translator before the shadow run.")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Validate a proposed configuration change against the testbed's live state           before committing it (exit status 1 if the change is harmful).")
    Term.(
      const validate_change $ file $ seed_arg $ prefixes_arg $ runs_arg
      $ jobs_arg $ json_arg)

(* ---------------- main ---------------- *)

let () =
  let doc = "DiCE: online testing of federated and heterogeneous distributed systems" in
  let info = Cmd.info "dice" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ gen_trace_cmd; gen_topology_cmd; trace_info_cmd; run_cmd;
            detect_leaks_cmd; replay_divergence_cmd; explore_filter_cmd;
            overhead_cmd; validate_cmd ]))
