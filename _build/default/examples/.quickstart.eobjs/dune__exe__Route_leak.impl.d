examples/route_leak.ml: Asn Attr Checker Dice_bgp Dice_concolic Dice_core Dice_inet Dice_topology Dice_trace List Orchestrator Prefix Printf Route Threerouter
