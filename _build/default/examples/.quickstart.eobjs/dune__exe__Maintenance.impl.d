examples/maintenance.ml: Asn Attr Config_parser Dice_bgp Dice_concolic Dice_core Dice_inet Dice_topology Dice_trace Format Fsm List Msg Orchestrator Prefix Printf Rib Route Router Validate
