examples/maintenance.mli:
