examples/coverage.ml: Attr Config_parser Croute Dice_bgp Dice_concolic Dice_core Dice_inet Engine Explorer Filter Filter_interp Format List Printf Route Strategy String
