examples/coverage.mli:
