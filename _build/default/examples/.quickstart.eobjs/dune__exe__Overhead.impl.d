examples/overhead.ml: Asn Attr Dice_bgp Dice_checkpoint Dice_concolic Dice_core Dice_inet Dice_topology Dice_trace Dice_util Gc List Orchestrator Prefix Printf Rib Route Router Unix
