examples/overhead.mli:
