examples/quickstart.ml: Asn Attr Dice_bgp Dice_core Dice_inet Dice_topology Dice_trace Format Hijack Ipv4 List Orchestrator Prefix Printf Route Router String Threerouter
