examples/route_leak.mli:
