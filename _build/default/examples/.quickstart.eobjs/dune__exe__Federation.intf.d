examples/federation.mli:
