examples/quickstart.mli:
