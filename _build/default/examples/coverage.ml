(* Concolic path exploration (paper Figure 1): watch the engine negate
   branch predicates one at a time and systematically cover the code paths
   of a BGP import filter.

   Run with: dune exec examples/coverage.exe *)

open Dice_bgp
open Dice_concolic

let filter_text =
  {|
  if net ~ [ 10.0.0.0/8{8,24}, 172.16.0.0/12{12,24} ] then {
    if bgp_med > 50 then {
      bgp_local_pref = 80;
      accept;
    }
    bgp_local_pref = 120;
    accept;
  }
  if bgp_path.len > 6 then reject;
  if bgp_origin = 2 then reject;
  accept;
  |}

let () =
  print_endline "== concolic exploration of a BGP filter ==";
  let filter = Config_parser.parse_filter ~name:"demo" filter_text in
  Format.printf "%a@.@." Filter.pp filter;
  let base_route =
    Route.make ~origin:Attr.Igp
      ~as_path:[ Dice_inet.Asn.Path.Seq [ 64501; 64502 ] ]
      ~med:(Some 10)
      ~next_hop:(Dice_inet.Ipv4.of_string "192.0.2.1")
      ()
  in
  let program ctx =
    let cr =
      Dice_core.Symbolize.croute ctx ~tag:"in"
        ~prefix:(Dice_inet.Prefix.of_string "10.1.2.0/24")
        ~route:base_route
    in
    (* MED is part of the symbolized inputs only when present; force it *)
    let cr =
      Croute.with_med cr (Engine.input ctx ~name:"in.med" ~width:32 ~default:10L)
    in
    ignore (Filter_interp.run ctx ~source_as:64501 ~local_as:64510 filter cr)
  in
  List.iter
    (fun strategy ->
      let config = { Explorer.default_config with Explorer.strategy; max_runs = 64 } in
      let report = Explorer.explore ~config program in
      Printf.printf "%-22s executions=%-4d paths=%-4d coverage=%5.1f%% divergences=%d\n"
        (Strategy.to_string strategy) report.Explorer.executions
        report.Explorer.distinct_paths
        (100.0 *. Explorer.coverage_ratio report)
        report.Explorer.divergences)
    [ Strategy.Dfs; Strategy.Generational; Strategy.Cover_new;
      Strategy.Random_negation 7L ];
  print_endline "";
  (* show the actual inputs DFS generated, Figure-1 style *)
  let report =
    Explorer.explore
      ~config:{ Explorer.default_config with Explorer.max_runs = 16 }
      program
  in
  print_endline "first runs of the DFS exploration (negated predicates -> new inputs):";
  List.iter
    (fun (r : Explorer.run) ->
      Printf.printf "  run %-3d path-length=%-3d new-directions=%-2d %s\n" r.index
        r.path_length r.new_directions
        (String.concat ", "
           (List.map (fun (n, v) -> Printf.sprintf "%s=%Ld" n v) r.assignment)))
    report.Explorer.runs
