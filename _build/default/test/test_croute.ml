(* Tests for concolic routes (Croute) and Config_types helpers. *)
open Dice_inet
open Dice_bgp
open Dice_concolic

let p = Prefix.of_string

let route =
  Route.make ~origin:Attr.Egp
    ~as_path:[ Asn.Path.Seq [ 64501; 64777 ] ]
    ~med:(Some 10) ~local_pref:(Some 120)
    ~communities:[ Community.make 1 2 ]
    ~atomic_aggregate:true
    ~aggregator:(Some (64501, Ipv4.of_string "10.0.0.1"))
    ~next_hop:(Ipv4.of_string "10.0.0.2")
    ()

let test_of_to_roundtrip () =
  let cr = Croute.of_route (p "192.0.2.0/24") route in
  let prefix', route' = Croute.to_route cr in
  Alcotest.(check string) "prefix" "192.0.2.0/24" (Prefix.to_string prefix');
  Alcotest.(check bool) "route preserved" true (Route.equal route route')

let test_prefix_of () =
  let cr = Croute.of_route (p "10.0.0.0/8") route in
  Alcotest.(check string) "prefix_of" "10.0.0.0/8" (Prefix.to_string (Croute.prefix_of cr))

let test_flags () =
  let cr = Croute.of_route (p "10.0.0.0/8") route in
  Alcotest.(check bool) "has_med" true cr.Croute.has_med;
  Alcotest.(check bool) "has_local_pref" true cr.Croute.has_local_pref;
  let bare = Route.make ~as_path:[ Asn.Path.Seq [ 1 ] ] ~next_hop:1 () in
  let cr2 = Croute.of_route (p "10.0.0.0/8") bare in
  Alcotest.(check bool) "no med" false cr2.Croute.has_med;
  let _, back = Croute.to_route cr2 in
  Alcotest.(check (option int)) "med stays absent" None back.Route.med

let test_origin_as_rewrite () =
  let cr = Croute.of_route (p "10.0.0.0/8") route in
  let cr = { cr with Croute.origin_as = Cval.of_int ~width:32 65000 } in
  let _, route' = Croute.to_route cr in
  Alcotest.(check (option int)) "origin rewritten" (Some 65000) (Route.origin_as route');
  Alcotest.(check (option int)) "first AS untouched" (Some 64501) (Route.neighbor_as route')

let test_origin_as_rewrite_empty_path () =
  let bare = Route.make ~as_path:Asn.Path.empty ~next_hop:1 () in
  let cr = Croute.of_route (p "10.0.0.0/8") bare in
  let cr = { cr with Croute.origin_as = Cval.of_int ~width:32 65000 } in
  let _, route' = Croute.to_route cr in
  Alcotest.(check (option int)) "origin set on empty path" (Some 65000)
    (Route.origin_as route')

let test_modifiers () =
  let cr = Croute.of_route (p "10.0.0.0/8") route in
  let cr = Croute.with_local_pref cr (Cval.of_int ~width:32 50) in
  let cr = Croute.with_med cr (Cval.of_int ~width:32 60) in
  let cr = Croute.add_community cr (Community.make 9 9) in
  let cr = Croute.prepend_as cr 64510 in
  let _, r = Croute.to_route cr in
  Alcotest.(check (option int)) "lp" (Some 50) r.Route.local_pref;
  Alcotest.(check (option int)) "med" (Some 60) r.Route.med;
  Alcotest.(check bool) "community added" true (Route.has_community r (Community.make 9 9));
  Alcotest.(check (option int)) "prepended" (Some 64510) (Route.neighbor_as r)

let test_remove_community () =
  let cr = Croute.of_route (p "10.0.0.0/8") route in
  let cr = Croute.remove_community cr (Community.make 1 2) in
  Alcotest.(check int) "removed" 0 (List.length cr.Croute.communities)

let test_len_clamped () =
  (* a symbolic length beyond 32 concretizes to a valid prefix *)
  let cr = Croute.of_route (p "10.0.0.0/8") route in
  let cr = { cr with Croute.net_len = Cval.of_int ~width:8 200 } in
  Alcotest.(check int) "clamped to 32" 32 (Prefix.len (Croute.prefix_of cr))

(* ---- Config_types ---- *)

let test_default_peer () =
  let pc = Config_types.default_peer ~name:"x" ~neighbor:(Ipv4.of_string "1.1.1.1") ~remote_as:1 in
  Alcotest.(check (float 0.0)) "hold" 90.0 pc.Config_types.hold_time;
  Alcotest.(check (float 0.0)) "keepalive" 30.0 pc.Config_types.keepalive_time;
  Alcotest.(check bool) "import all" true (pc.Config_types.import_policy = Config_types.All)

let test_find_helpers () =
  let f = Filter.accept_all "f1" in
  let pc = Config_types.default_peer ~name:"x" ~neighbor:(Ipv4.of_string "1.1.1.1") ~remote_as:1 in
  let cfg =
    Config_types.make ~router_id:(Ipv4.of_string "9.9.9.9") ~local_as:99 ~peers:[ pc ]
      ~filters:[ f ] ()
  in
  Alcotest.(check bool) "find_filter hit" true (Config_types.find_filter cfg "f1" <> None);
  Alcotest.(check bool) "find_filter miss" true (Config_types.find_filter cfg "nope" = None);
  Alcotest.(check bool) "find_peer hit" true
    (Config_types.find_peer cfg (Ipv4.of_string "1.1.1.1") <> None);
  Alcotest.(check bool) "find_peer miss" true
    (Config_types.find_peer cfg (Ipv4.of_string "2.2.2.2") = None)

let test_pp_policy () =
  let f = Filter.reject_all "guard" in
  Alcotest.(check string) "all" "all" (Format.asprintf "%a" Config_types.pp_policy Config_types.All);
  Alcotest.(check string) "none" "none"
    (Format.asprintf "%a" Config_types.pp_policy Config_types.Nothing);
  Alcotest.(check string) "filter" "filter guard"
    (Format.asprintf "%a" Config_types.pp_policy (Config_types.Use_filter f))

(* ---- message-decoder fuzz: random bytes must never raise ---- *)

let prop_decode_total =
  QCheck.Test.make ~name:"Msg.decode is total on arbitrary bytes" ~count:500
    QCheck.(string_of_size (Gen.int_range 0 100))
    (fun s ->
      match Msg.decode (Bytes.of_string s) with
      | Ok _ | Error _ -> true)

let prop_decode_corrupted_total =
  (* single-byte corruptions of a valid message: decode never raises, and
     either fails cleanly or yields a message *)
  QCheck.Test.make ~name:"Msg.decode is total on corrupted updates" ~count:500
    QCheck.(pair (int_bound 57) (int_bound 255))
    (fun (i, b) ->
      let base =
        Msg.encode
          (Msg.Update
             { withdrawn = [];
               attrs = Route.to_attrs route;
               nlri = [ p "203.0.113.0/24" ];
             })
      in
      let bytes = Bytes.copy base in
      Bytes.set bytes (i mod Bytes.length bytes) (Char.chr b);
      match Msg.decode bytes with
      | Ok _ | Error _ -> true)

let prop_attr_decode_total =
  QCheck.Test.make ~name:"Attr.decode_list is total on arbitrary bytes" ~count:500
    QCheck.(string_of_size (Gen.int_range 0 60))
    (fun s ->
      match Attr.decode_list ~as4:true (Dice_wire.Rbuf.of_bytes (Bytes.of_string s)) with
      | Ok _ | Error _ -> true)

let prop_config_parse_total =
  (* the parser must raise only its documented exceptions *)
  QCheck.Test.make ~name:"Config_parser raises only Parse_error/Lex_error" ~count:300
    QCheck.(string_of_size (Gen.int_range 0 80))
    (fun s ->
      match Config_parser.parse s with
      | _ -> true
      | exception Config_parser.Parse_error _ -> true
      | exception Config_lexer.Lex_error _ -> true)

let suite =
  [ ("croute roundtrip", `Quick, test_of_to_roundtrip);
    ("croute prefix_of", `Quick, test_prefix_of);
    ("croute med/lp flags", `Quick, test_flags);
    ("croute origin rewrite", `Quick, test_origin_as_rewrite);
    ("croute origin rewrite empty path", `Quick, test_origin_as_rewrite_empty_path);
    ("croute modifiers", `Quick, test_modifiers);
    ("croute remove community", `Quick, test_remove_community);
    ("croute length clamped", `Quick, test_len_clamped);
    ("config default peer", `Quick, test_default_peer);
    ("config find helpers", `Quick, test_find_helpers);
    ("config pp_policy", `Quick, test_pp_policy);
    QCheck_alcotest.to_alcotest prop_decode_total;
    QCheck_alcotest.to_alcotest prop_decode_corrupted_total;
    QCheck_alcotest.to_alcotest prop_attr_decode_total;
    QCheck_alcotest.to_alcotest prop_config_parse_total
  ]
