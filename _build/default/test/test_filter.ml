(* Tests for the filter language: patterns, parsing, interpretation. *)
open Dice_inet
open Dice_bgp
open Dice_concolic

let p = Prefix.of_string

(* ---- prefix patterns ---- *)

let pat base low high = { Filter.base = p base; low; high }

let test_pattern_exact () =
  let pt = pat "10.0.0.0/8" 8 8 in
  Alcotest.(check bool) "matches itself" true (Filter.pattern_matches pt (p "10.0.0.0/8"));
  Alcotest.(check bool) "longer rejected" false (Filter.pattern_matches pt (p "10.0.0.0/9"));
  Alcotest.(check bool) "other rejected" false (Filter.pattern_matches pt (p "11.0.0.0/8"))

let test_pattern_plus () =
  let pt = pat "10.0.0.0/8" 8 32 in
  Alcotest.(check bool) "itself" true (Filter.pattern_matches pt (p "10.0.0.0/8"));
  Alcotest.(check bool) "more specific" true (Filter.pattern_matches pt (p "10.1.2.0/24"));
  Alcotest.(check bool) "host" true (Filter.pattern_matches pt (p "10.1.2.3/32"));
  Alcotest.(check bool) "outside" false (Filter.pattern_matches pt (p "11.0.0.0/24"));
  Alcotest.(check bool) "shorter" false (Filter.pattern_matches pt (p "8.0.0.0/7"))

let test_pattern_minus () =
  let pt = pat "10.0.0.0/8" 0 8 in
  Alcotest.(check bool) "itself" true (Filter.pattern_matches pt (p "10.0.0.0/8"));
  Alcotest.(check bool) "covering /4" true (Filter.pattern_matches pt (p "0.0.0.0/4"));
  Alcotest.(check bool) "longer rejected" false (Filter.pattern_matches pt (p "10.0.0.0/9"))

let test_pattern_range () =
  let pt = pat "198.51.100.0/22" 22 28 in
  Alcotest.(check bool) "/24 inside" true (Filter.pattern_matches pt (p "198.51.101.0/24"));
  Alcotest.(check bool) "/29 too long" false (Filter.pattern_matches pt (p "198.51.100.0/29"));
  Alcotest.(check bool) "wrong block" false (Filter.pattern_matches pt (p "198.51.96.0/24"))

(* ---- parsing ---- *)

let parse_filter body = Config_parser.parse_filter ~name:"t" body

let test_parse_simple () =
  let f = parse_filter "accept;" in
  Alcotest.(check int) "one stmt" 1 (List.length f.Filter.body)

let test_parse_if_else () =
  let f = parse_filter "if net.len > 24 then reject; else accept;" in
  match f.Filter.body with
  | [ Filter.If { cond = Filter.Cmp (Filter.Cgt, Filter.Net_len, Filter.Int_lit 24);
                  then_ = [ Filter.Reject ]; else_ = [ Filter.Accept ]; _ } ] -> ()
  | _ -> Alcotest.fail "unexpected AST"

let test_parse_patterns () =
  let f = parse_filter "if net ~ [ 10.0.0.0/8+, 172.16.0.0/12{12,24}, 192.168.0.0/16- , 1.2.3.0/24 ] then accept; reject;" in
  match f.Filter.body with
  | [ Filter.If { cond = Filter.Match_net pats; _ }; Filter.Reject ] ->
    Alcotest.(check (list (pair int int)))
      "bounds"
      [ (8, 32); (12, 24); (0, 16); (24, 24) ]
      (List.map (fun (pt : Filter.prefix_pattern) -> (pt.Filter.low, pt.Filter.high)) pats)
  | _ -> Alcotest.fail "unexpected AST"

let test_parse_boolean_structure () =
  let f = parse_filter "if net.len >= 8 && (bgp_med = 5 || !(bgp_origin = 2)) then accept; reject;" in
  match f.Filter.body with
  | [ Filter.If { cond = Filter.And (_, Filter.Or (_, Filter.Not _)); _ }; Filter.Reject ] -> ()
  | _ -> Alcotest.fail "unexpected AST"

let test_parse_assignments () =
  let f =
    parse_filter
      "bgp_local_pref = 120; bgp_med = 5; bgp_community.add(64500:1); \
       bgp_community.delete(64500:2); bgp_path.prepend(3); accept;"
  in
  Alcotest.(check int) "six stmts" 6 (List.length f.Filter.body)

let test_parse_path_atoms () =
  let f = parse_filter "if bgp_path ~ 64501 && bgp_community ~ 64500:80 && bgp_path.len < 5 && bgp_path.first = 1 && bgp_path.last = 2 && source_as = 3 then accept; reject;" in
  Alcotest.(check int) "parses" 2 (List.length f.Filter.body)

let test_parse_errors () =
  let bad body =
    match Config_parser.parse_filter ~name:"bad" body with
    | exception Config_parser.Parse_error _ -> ()
    | exception Config_lexer.Lex_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" body
  in
  bad "if net ~ then accept;";
  bad "accept";
  bad "bgp_local_pref 120;";
  bad "if net.len >> 3 then accept;";
  bad "unknown_statement;"

let test_parse_error_line_numbers () =
  match Config_parser.parse "router id 10.0.0.1;\nlocal as 1;\nbogus;" with
  | exception Config_parser.Parse_error { line; _ } -> Alcotest.(check int) "line 3" 3 line
  | _ -> Alcotest.fail "expected parse error"

let test_parse_full_config () =
  let cfg =
    Config_parser.parse
      {|
      # full configuration exercise
      router id 10.0.0.1;
      local as 64510;
      filter f1 { if net ~ [ 10.0.0.0/8+ ] then accept; reject; }
      protocol static {
        route 192.0.2.0/24 via 10.0.0.2;
        route 198.51.100.0/22 via 10.0.0.3;
      }
      protocol bgp customer {
        neighbor 10.0.1.2 as 64501;
        import filter f1;
        export none;
        hold time 30;
        keepalive time 10;
        connect retry time 7;
      }
      anycast [ 192.88.99.0/24 ];
      |}
  in
  Alcotest.(check string) "router id" "10.0.0.1" (Ipv4.to_string cfg.Config_types.router_id);
  Alcotest.(check int) "local as" 64510 cfg.Config_types.local_as;
  Alcotest.(check int) "filters" 1 (List.length cfg.Config_types.filters);
  Alcotest.(check int) "statics" 2 (List.length cfg.Config_types.static_routes);
  Alcotest.(check int) "anycast" 1 (List.length cfg.Config_types.anycast);
  match cfg.Config_types.peers with
  | [ peer ] ->
    Alcotest.(check int) "remote as" 64501 peer.Config_types.remote_as;
    Alcotest.(check (float 0.0)) "hold" 30.0 peer.Config_types.hold_time;
    Alcotest.(check (float 0.0)) "keepalive" 10.0 peer.Config_types.keepalive_time;
    Alcotest.(check (float 0.0)) "retry" 7.0 peer.Config_types.connect_retry_time;
    (match peer.Config_types.import_policy with
    | Config_types.Use_filter f -> Alcotest.(check string) "filter name" "f1" f.Filter.name
    | _ -> Alcotest.fail "expected filter policy");
    (match peer.Config_types.export_policy with
    | Config_types.Nothing -> ()
    | _ -> Alcotest.fail "expected none policy")
  | _ -> Alcotest.fail "expected one peer"

let test_parse_unknown_filter_rejected () =
  match
    Config_parser.parse
      "router id 1.1.1.1; local as 1;\n\
       protocol bgp x { neighbor 2.2.2.2 as 2; import filter nope; }"
  with
  | exception Config_parser.Parse_error { msg; _ } ->
    Alcotest.(check bool) "mentions the filter" true
      (String.length msg > 0 && String.sub msg 0 14 = "unknown filter")
  | _ -> Alcotest.fail "expected parse error"

let test_keepalive_defaults_to_third () =
  let cfg =
    Config_parser.parse
      "router id 1.1.1.1; local as 1;\nprotocol bgp x { neighbor 2.2.2.2 as 2; hold time 90; }"
  in
  match cfg.Config_types.peers with
  | [ peer ] -> Alcotest.(check (float 0.0)) "hold/3" 30.0 peer.Config_types.keepalive_time
  | _ -> Alcotest.fail "expected one peer"

(* ---- interpretation (concrete) ---- *)

let croute_of prefix route = Croute.of_route (p prefix) route

let base_route =
  Route.make ~origin:Attr.Igp
    ~as_path:[ Asn.Path.Seq [ 64501; 64777 ] ]
    ~med:(Some 10)
    ~next_hop:(Ipv4.of_string "10.0.0.2")
    ()

let run_filter body prefix route =
  let f = parse_filter body in
  Filter_interp.run (Engine.null ()) ~source_as:64501 ~local_as:64510 f
    (croute_of prefix route)

let expect_accept body prefix route =
  match run_filter body prefix route with
  | Filter_interp.Accepted cr -> cr
  | Filter_interp.Rejected -> Alcotest.fail "expected accept"

let expect_reject body prefix route =
  match run_filter body prefix route with
  | Filter_interp.Rejected -> ()
  | Filter_interp.Accepted _ -> Alcotest.fail "expected reject"

let test_interp_accept_reject () =
  ignore (expect_accept "accept;" "10.0.0.0/24" base_route);
  expect_reject "reject;" "10.0.0.0/24" base_route;
  (* falling off the end rejects *)
  expect_reject "bgp_med = 1;" "10.0.0.0/24" base_route

let test_interp_match_net () =
  ignore (expect_accept "if net ~ [ 10.0.0.0/8+ ] then accept; reject;" "10.1.0.0/16" base_route);
  expect_reject "if net ~ [ 10.0.0.0/8+ ] then accept; reject;" "11.1.0.0/16" base_route

let test_interp_if_else () =
  expect_reject "if net.len > 8 then reject; else accept;" "10.0.0.0/16" base_route;
  ignore (expect_accept "if net.len > 8 then reject; else accept;" "10.0.0.0/8" base_route)

let test_interp_terms () =
  ignore (expect_accept "if bgp_path.len = 2 then accept; reject;" "10.0.0.0/8" base_route);
  ignore (expect_accept "if bgp_path.first = 64501 then accept; reject;" "10.0.0.0/8" base_route);
  ignore (expect_accept "if bgp_path.last = 64777 then accept; reject;" "10.0.0.0/8" base_route);
  ignore (expect_accept "if source_as = 64501 then accept; reject;" "10.0.0.0/8" base_route);
  ignore (expect_accept "if bgp_med = 10 then accept; reject;" "10.0.0.0/8" base_route);
  ignore (expect_accept "if bgp_origin = 0 then accept; reject;" "10.0.0.0/8" base_route)

let test_interp_path_has () =
  ignore (expect_accept "if bgp_path ~ 64777 then accept; reject;" "10.0.0.0/8" base_route);
  expect_reject "if bgp_path ~ 65000 then accept; reject;" "10.0.0.0/8" base_route

let test_interp_attribute_assignment () =
  let cr = expect_accept "bgp_local_pref = 120; bgp_med = 7; accept;" "10.0.0.0/8" base_route in
  let _, r = Croute.to_route cr in
  Alcotest.(check (option int)) "lp" (Some 120) r.Route.local_pref;
  Alcotest.(check (option int)) "med" (Some 7) r.Route.med

let test_interp_communities () =
  let cr =
    expect_accept "bgp_community.add(64500:80); accept;" "10.0.0.0/8" base_route
  in
  Alcotest.(check bool) "added" true
    (List.mem (Community.make 64500 80) cr.Croute.communities);
  let cr2 =
    expect_accept "bgp_community.add(64500:80); bgp_community.delete(64500:80); accept;"
      "10.0.0.0/8" base_route
  in
  Alcotest.(check bool) "deleted" false
    (List.mem (Community.make 64500 80) cr2.Croute.communities)

let test_interp_prepend () =
  let cr = expect_accept "bgp_path.prepend(2); accept;" "10.0.0.0/8" base_route in
  Alcotest.(check int) "two longer" 4 (Asn.Path.length cr.Croute.as_path);
  Alcotest.(check (option int)) "prepends local AS" (Some 64510)
    (Asn.Path.first_as cr.Croute.as_path)

let test_interp_nested_if () =
  let body =
    "if net.len >= 8 then { if bgp_med > 5 then { bgp_local_pref = 50; accept; } reject; } \
     reject;"
  in
  let cr = expect_accept body "10.0.0.0/16" base_route in
  Alcotest.(check int) "assigned in nested arm" 50 (Dice_concolic.Cval.to_int cr.Croute.local_pref)

let test_interp_concolic_matches_concrete () =
  (* the same filter decided with a recording context and symbolic inputs
     must take the same concrete verdict *)
  let f = parse_filter "if net ~ [ 10.0.0.0/8{8,24} ] && bgp_med < 50 then accept; reject;" in
  let space = Engine.Space.create () in
  let ctx = Engine.create ~space ~overrides:(Hashtbl.create 0) () in
  let cr_conc = croute_of "10.1.0.0/16" base_route in
  let cr_sym =
    { cr_conc with
      Croute.net_addr = Engine.input ctx ~name:"fa" ~width:32 ~default:(Int64.of_int (Prefix.network (p "10.1.0.0/16")));
      net_len = Engine.input ctx ~name:"fl" ~width:8 ~default:16L;
      med = Engine.input ctx ~name:"fm" ~width:32 ~default:10L;
    }
  in
  let v_conc = Filter_interp.run (Engine.null ()) ~source_as:1 ~local_as:2 f cr_conc in
  let v_sym = Filter_interp.run ctx ~source_as:1 ~local_as:2 f cr_sym in
  let verdict = function Filter_interp.Accepted _ -> true | Filter_interp.Rejected -> false in
  Alcotest.(check bool) "same verdict" (verdict v_conc) (verdict v_sym);
  Alcotest.(check bool) "constraints recorded" true (Dice_concolic.Path.length (Engine.path ctx) > 0)

let test_eval_pattern_concolic_agrees () =
  (* eval_cond's Match_net over concrete cvals agrees with
     Filter.pattern_matches across a population of prefixes *)
  let pt = pat "198.51.100.0/22" 22 28 in
  List.iter
    (fun s ->
      let pfx = p s in
      let cr = croute_of s base_route in
      let expect = Filter.pattern_matches pt pfx in
      let got =
        Dice_concolic.Cval.bool_of
          (Filter_interp.eval_cond (Engine.null ()) ~source_as:1 (Filter.Match_net [ pt ]) cr)
      in
      Alcotest.(check bool) s expect got)
    [ "198.51.100.0/22"; "198.51.101.0/24"; "198.51.100.0/28"; "198.51.100.0/29";
      "198.51.96.0/22"; "198.51.100.0/21"; "10.0.0.0/24"; "198.51.102.128/25" ]

let suite =
  [ ("pattern exact", `Quick, test_pattern_exact);
    ("pattern plus", `Quick, test_pattern_plus);
    ("pattern minus", `Quick, test_pattern_minus);
    ("pattern range", `Quick, test_pattern_range);
    ("parse simple", `Quick, test_parse_simple);
    ("parse if/else", `Quick, test_parse_if_else);
    ("parse patterns", `Quick, test_parse_patterns);
    ("parse boolean structure", `Quick, test_parse_boolean_structure);
    ("parse assignments", `Quick, test_parse_assignments);
    ("parse path atoms", `Quick, test_parse_path_atoms);
    ("parse errors", `Quick, test_parse_errors);
    ("parse error line numbers", `Quick, test_parse_error_line_numbers);
    ("parse full config", `Quick, test_parse_full_config);
    ("unknown filter rejected", `Quick, test_parse_unknown_filter_rejected);
    ("keepalive defaults", `Quick, test_keepalive_defaults_to_third);
    ("interp accept/reject", `Quick, test_interp_accept_reject);
    ("interp match net", `Quick, test_interp_match_net);
    ("interp if/else", `Quick, test_interp_if_else);
    ("interp terms", `Quick, test_interp_terms);
    ("interp path has", `Quick, test_interp_path_has);
    ("interp assignment", `Quick, test_interp_attribute_assignment);
    ("interp communities", `Quick, test_interp_communities);
    ("interp prepend", `Quick, test_interp_prepend);
    ("interp nested if", `Quick, test_interp_nested_if);
    ("concolic matches concrete", `Quick, test_interp_concolic_matches_concrete);
    ("pattern concolic agrees", `Quick, test_eval_pattern_concolic_agrees)
  ]
