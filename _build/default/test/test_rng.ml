(* Tests for Dice_util.Rng. *)
module Rng = Dice_util.Rng

let test_determinism () =
  let a = Rng.create 7L and b = Rng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 7L and b = Rng.create 8L in
  Alcotest.(check bool) "different streams" false (Rng.int64 a = Rng.int64 b)

let test_int_range () =
  let rng = Rng.create 1L in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_int_in_range () =
  let rng = Rng.create 2L in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-5) 9 in
    Alcotest.(check bool) "in [-5,9]" true (v >= -5 && v <= 9)
  done

let test_int_in_point () =
  let rng = Rng.create 3L in
  Alcotest.(check int) "singleton range" 4 (Rng.int_in rng 4 4)

let test_float_range () =
  let rng = Rng.create 4L in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_bool_mixes () =
  let rng = Rng.create 5L in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bool rng then incr trues
  done;
  Alcotest.(check bool) "roughly fair" true (!trues > 400 && !trues < 600)

let test_chance_extremes () =
  let rng = Rng.create 6L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always true" true (Rng.chance rng 1.0);
    Alcotest.(check bool) "p=0 never true" false (Rng.chance rng 0.0)
  done

let test_pick () =
  let rng = Rng.create 7L in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (Array.mem (Rng.pick rng arr) arr)
  done

let test_pick_list () =
  let rng = Rng.create 8L in
  for _ = 1 to 50 do
    Alcotest.(check bool) "member" true (List.mem (Rng.pick_list rng [ 1; 2; 3 ]) [ 1; 2; 3 ])
  done

let test_shuffle_permutes () =
  let rng = Rng.create 9L in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_split_independent () =
  let a = Rng.create 10L in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int64 a) in
  let ys = List.init 10 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_copy_replays () =
  let a = Rng.create 11L in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let test_zipf_range () =
  let rng = Rng.create 12L in
  for _ = 1 to 500 do
    let v = Rng.zipf rng 100 1.1 in
    Alcotest.(check bool) "in [1,100]" true (v >= 1 && v <= 100)
  done

let test_zipf_skew () =
  let rng = Rng.create 13L in
  let low = ref 0 in
  for _ = 1 to 1000 do
    if Rng.zipf rng 1000 1.0 <= 10 then incr low
  done;
  Alcotest.(check bool) "head-heavy" true (!low > 200)

let test_zipf_singleton () =
  let rng = Rng.create 14L in
  Alcotest.(check int) "n=1" 1 (Rng.zipf rng 1 1.0)

let test_geometric_nonneg () =
  let rng = Rng.create 15L in
  for _ = 1 to 500 do
    Alcotest.(check bool) "non-negative" true (Rng.geometric rng 0.3 >= 0)
  done

let test_exponential_positive () =
  let rng = Rng.create 16L in
  for _ = 1 to 500 do
    Alcotest.(check bool) "positive" true (Rng.exponential rng 2.0 > 0.0)
  done

let test_exponential_mean () =
  let rng = Rng.create 17L in
  let s = ref 0.0 in
  let n = 20_000 in
  for _ = 1 to n do
    s := !s +. Rng.exponential rng 4.0
  done;
  let mean = !s /. float_of_int n in
  Alcotest.(check bool) "mean near 1/rate" true (mean > 0.2 && mean < 0.3)

let suite =
  [ ("determinism", `Quick, test_determinism);
    ("seed sensitivity", `Quick, test_seed_sensitivity);
    ("int range", `Quick, test_int_range);
    ("int_in range", `Quick, test_int_in_range);
    ("int_in point", `Quick, test_int_in_point);
    ("float range", `Quick, test_float_range);
    ("bool mixes", `Quick, test_bool_mixes);
    ("chance extremes", `Quick, test_chance_extremes);
    ("pick", `Quick, test_pick);
    ("pick_list", `Quick, test_pick_list);
    ("shuffle permutes", `Quick, test_shuffle_permutes);
    ("split independent", `Quick, test_split_independent);
    ("copy replays", `Quick, test_copy_replays);
    ("zipf range", `Quick, test_zipf_range);
    ("zipf skew", `Quick, test_zipf_skew);
    ("zipf singleton", `Quick, test_zipf_singleton);
    ("geometric non-negative", `Quick, test_geometric_nonneg);
    ("exponential positive", `Quick, test_exponential_positive);
    ("exponential mean", `Quick, test_exponential_mean)
  ]
