(* Tests for the linear-constraint normal form and the JSON encoder. *)
open Dice_concolic
module Json = Dice_util.Json

let v32 name = Sym.var ~name ~width:32
let c32 v = Sym.const ~width:32 v

let env_of bindings =
  let e : Sym.env = Hashtbl.create 8 in
  List.iter (fun (v, x) -> Hashtbl.replace e v.Sym.id x) bindings;
  e

(* ---- Lincons ---- *)

let test_linear_of_const () =
  match Lincons.of_sym (c32 42L) with
  | Some lin ->
    Alcotest.(check bool) "constant" true (Lincons.is_constant lin);
    Alcotest.(check int64) "value" 42L (Lincons.eval (Hashtbl.create 0) lin)
  | None -> Alcotest.fail "constant is linear"

let test_linear_collects_terms () =
  let x = v32 "lcx" and y = v32 "lcy" in
  (* 3*x + x - y + 7 => 4*x - y + 7 *)
  let expr =
    Sym.Binop
      ( Sym.Add,
        Sym.Binop
          ( Sym.Sub,
            Sym.Binop (Sym.Add, Sym.Binop (Sym.Mul, c32 3L, Sym.of_var x), Sym.of_var x),
            Sym.of_var y ),
        c32 7L )
  in
  match Lincons.of_sym expr with
  | Some lin ->
    Alcotest.(check (list int)) "vars" [ x.Sym.id; y.Sym.id ] (Lincons.vars lin);
    let e = env_of [ (x, 10L); (y, 5L) ] in
    Alcotest.(check int64) "agrees with Sym.eval" (Sym.eval e expr) (Lincons.eval e lin)
  | None -> Alcotest.fail "expected linear"

let test_linear_cancellation () =
  let x = v32 "lcz" in
  (* x - x collapses to the constant 0 *)
  let expr = Sym.Binop (Sym.Sub, Sym.of_var x, Sym.of_var x) in
  match Lincons.of_sym expr with
  | Some lin -> Alcotest.(check bool) "cancelled" true (Lincons.is_constant lin)
  | None -> Alcotest.fail "expected linear"

let test_linear_shl_is_scaling () =
  let x = v32 "lshl" in
  let expr = Sym.Binop (Sym.Shl, Sym.of_var x, Sym.const ~width:8 4L) in
  match Lincons.of_sym expr with
  | Some lin ->
    let e = env_of [ (x, 3L) ] in
    Alcotest.(check int64) "16*x" 48L (Lincons.eval e lin)
  | None -> Alcotest.fail "shift by constant is linear"

let test_nonlinear_rejected () =
  let x = v32 "lnl" in
  List.iter
    (fun expr ->
      Alcotest.(check bool) "not linear" true (Lincons.of_sym expr = None))
    [ Sym.Binop (Sym.Mul, Sym.of_var x, Sym.of_var x);
      Sym.Binop (Sym.And, Sym.of_var x, c32 0xFFL);
      Sym.Binop (Sym.Lshr, Sym.of_var x, Sym.const ~width:8 2L);
      Sym.Unop (Sym.Bnot, Sym.of_var x)
    ]

let test_solve_odd_coefficient () =
  let x = v32 "lso" in
  (* 7*x + 11 = punched through modular inverse *)
  let expr =
    Sym.Binop (Sym.Add, Sym.Binop (Sym.Mul, c32 7L, Sym.of_var x), c32 11L)
  in
  match Lincons.of_sym expr with
  | Some lin -> begin
    match Lincons.solve_for lin ~var_id:x.Sym.id ~target:53L ~env:(Hashtbl.create 0) with
    | [ sol ] ->
      Alcotest.(check int64) "7*6+11 = 53" 6L sol
    | other -> Alcotest.failf "expected one solution, got %d" (List.length other)
  end
  | None -> Alcotest.fail "expected linear"

let test_solve_even_coefficient () =
  let x = v32 "lse" in
  let expr = Sym.Binop (Sym.Mul, c32 12L, Sym.of_var x) in
  match Lincons.of_sym expr with
  | Some lin -> begin
    (* 12*x = 36 -> x = 3; 12*x = 37 -> impossible (odd residual) *)
    (match Lincons.solve_for lin ~var_id:x.Sym.id ~target:36L ~env:(Hashtbl.create 0) with
    | [ sol ] ->
      let e = env_of [] in
      Hashtbl.replace e x.Sym.id sol;
      Alcotest.(check int64) "verifies" 36L (Sym.eval e expr)
    | _ -> Alcotest.fail "expected a solution for 36");
    match Lincons.solve_for lin ~var_id:x.Sym.id ~target:37L ~env:(Hashtbl.create 0) with
    | [] -> ()
    | _ -> Alcotest.fail "37 is not divisible"
  end
  | None -> Alcotest.fail "expected linear"

let test_solve_with_other_vars_fixed () =
  let x = v32 "lsx" and y = v32 "lsy" in
  (* x + 2*y = 100 with y = 30 -> x = 40 *)
  let expr =
    Sym.Binop (Sym.Add, Sym.of_var x, Sym.Binop (Sym.Mul, c32 2L, Sym.of_var y))
  in
  match Lincons.of_sym expr with
  | Some lin -> begin
    match Lincons.solve_for lin ~var_id:x.Sym.id ~target:100L ~env:(env_of [ (y, 30L) ]) with
    | [ sol ] -> Alcotest.(check int64) "x" 40L sol
    | _ -> Alcotest.fail "expected one solution"
  end
  | None -> Alcotest.fail "expected linear"

let prop_lincons_agrees_with_eval =
  QCheck.Test.make ~name:"lincons eval agrees with Sym.eval on linear terms" ~count:300
    QCheck.(triple (int_bound 1000) (int_bound 1000) (int_bound 50))
    (fun (a, b, k) ->
      let x = v32 "plx" and y = v32 "ply" in
      let expr =
        Sym.Binop
          ( Sym.Sub,
            Sym.Binop
              (Sym.Add, Sym.Binop (Sym.Mul, c32 (Int64.of_int k), Sym.of_var x), Sym.of_var y),
            c32 (Int64.of_int b) )
      in
      let e = env_of [ (x, Int64.of_int a); (y, Int64.of_int b) ] in
      match Lincons.of_sym expr with
      | Some lin -> Lincons.eval e lin = Sym.eval e expr
      | None -> false)

let prop_solver_handles_linear_chains =
  (* end-to-end: the solver now solves x + x + 2 == k exactly when k is even *)
  QCheck.Test.make ~name:"solver solves doubled-variable equalities" ~count:100
    QCheck.(int_bound 10000)
    (fun k ->
      let x = Sym.var ~name:(Printf.sprintf "dsx%d" k) ~width:32 in
      let expr =
        Sym.Binop
          (Sym.Eq,
           Sym.Binop (Sym.Add, Sym.Binop (Sym.Add, Sym.of_var x, Sym.of_var x), c32 2L),
           c32 (Int64.of_int (2 * k)))
      in
      let cs = [ { Path.expr; expected_nonzero = true } ] in
      match Solver.solve ~hint:(Hashtbl.create 0) cs with
      | Solver.Sat env -> Solver.holds_all env cs
      | Solver.Unsat | Solver.Gave_up -> k = 0 && false)

(* ---- Json ---- *)

let test_json_scalars () =
  Alcotest.(check string) "null" "null" (Json.to_string Json.Null);
  Alcotest.(check string) "true" "true" (Json.to_string (Json.bool true));
  Alcotest.(check string) "int" "42" (Json.to_string (Json.int 42));
  Alcotest.(check string) "float" "1.5" (Json.to_string (Json.float 1.5));
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.float Float.nan));
  Alcotest.(check string) "string" "\"hi\"" (Json.to_string (Json.string "hi"))

let test_json_escaping () =
  Alcotest.(check string) "quotes and backslash" "\\\"a\\\\b\\\"" (Json.escape "\"a\\b\"");
  Alcotest.(check string) "newline" "line\\nbreak" (Json.escape "line\nbreak");
  Alcotest.(check string) "control" "\\u0001" (Json.escape "\001")

let test_json_compound () =
  let v =
    Json.obj
      [ ("xs", Json.list Json.int [ 1; 2 ]); ("empty", Json.List []); ("o", Json.obj []) ]
  in
  Alcotest.(check string) "compact" "{\"xs\":[1,2],\"empty\":[],\"o\":{}}" (Json.to_string v)

let test_json_indent_parses_back_structurally () =
  let v = Json.obj [ ("a", Json.int 1); ("b", Json.list Json.string [ "x" ]) ] in
  let s = Json.to_string ~indent:true v in
  (* structural smoke: the indented form contains the same tokens *)
  Alcotest.(check bool) "has key" true (String.length s > 10);
  Alcotest.(check bool) "multi-line" true (String.contains s '\n')

let test_report_json_shape () =
  (* a fault renders with the expected fields *)
  let f =
    { Dice_core.Checker.checker = "origin-hijack";
      severity = Dice_core.Checker.Critical;
      prefix = Dice_inet.Prefix.of_string "10.0.0.0/8";
      description = "d";
      details = [ ("k", "v") ];
    }
  in
  match Dice_core.Report.fault_json f with
  | Json.Obj fields ->
    Alcotest.(check (list string)) "fields"
      [ "checker"; "severity"; "prefix"; "description"; "details" ]
      (List.map fst fields)
  | _ -> Alcotest.fail "expected an object"

let suite =
  [ ("lincons of const", `Quick, test_linear_of_const);
    ("lincons collects terms", `Quick, test_linear_collects_terms);
    ("lincons cancellation", `Quick, test_linear_cancellation);
    ("lincons shl scaling", `Quick, test_linear_shl_is_scaling);
    ("lincons rejects nonlinear", `Quick, test_nonlinear_rejected);
    ("lincons solve odd coeff", `Quick, test_solve_odd_coefficient);
    ("lincons solve even coeff", `Quick, test_solve_even_coefficient);
    ("lincons solve with fixed vars", `Quick, test_solve_with_other_vars_fixed);
    QCheck_alcotest.to_alcotest prop_lincons_agrees_with_eval;
    QCheck_alcotest.to_alcotest prop_solver_handles_linear_chains;
    ("json scalars", `Quick, test_json_scalars);
    ("json escaping", `Quick, test_json_escaping);
    ("json compound", `Quick, test_json_compound);
    ("json indent", `Quick, test_json_indent_parses_back_structurally);
    ("report json shape", `Quick, test_report_json_shape)
  ]
