(* Tests for the concolic exploration loop. *)
open Dice_concolic

let explore ?(max_runs = 64) ?(strategy = Strategy.Dfs) program =
  Explorer.explore
    ~config:{ Explorer.default_config with Explorer.max_runs; strategy }
    program

(* a diamond: two independent branches, four paths *)
let diamond hits ctx =
  let x = Engine.input ctx ~name:"dx" ~width:8 ~default:0L in
  let y = Engine.input ctx ~name:"dy" ~width:8 ~default:0L in
  let a = Engine.branchf ctx "d:a" (Cval.ugt x (Cval.of_int ~width:8 10)) in
  let b = Engine.branchf ctx "d:b" (Cval.ugt y (Cval.of_int ~width:8 10)) in
  hits := (a, b) :: !hits

let test_diamond_all_paths () =
  let hits = ref [] in
  let report = explore (diamond hits) in
  let distinct = List.sort_uniq compare !hits in
  Alcotest.(check int) "all four outcomes" 4 (List.length distinct);
  Alcotest.(check int) "four distinct paths" 4 report.Explorer.distinct_paths;
  Alcotest.(check bool) "full coverage" true (Explorer.coverage_ratio report = 1.0)

let test_deep_equality () =
  (* requires solving x == 0xDEAD through a guard: classic concolic win *)
  let found = ref false in
  let program ctx =
    let x = Engine.input ctx ~name:"eq" ~width:32 ~default:0L in
    if Engine.branchf ctx "deep:guard" (Cval.eq x (Cval.of_int ~width:32 0xDEAD)) then
      found := true
  in
  ignore (explore program);
  Alcotest.(check bool) "found the magic value" true !found

let test_nested_guards () =
  (* x > 100, then x < 200, then x == 150: nested path, needs prefix
     preservation *)
  let reached = ref false in
  let program ctx =
    let x = Engine.input ctx ~name:"ng" ~width:32 ~default:0L in
    if Engine.branchf ctx "ng:1" (Cval.ugt x (Cval.of_int ~width:32 100)) then
      if Engine.branchf ctx "ng:2" (Cval.ult x (Cval.of_int ~width:32 200)) then
        if Engine.branchf ctx "ng:3" (Cval.eq x (Cval.of_int ~width:32 150)) then
          reached := true
  in
  ignore (explore program);
  Alcotest.(check bool) "reached depth 3" true !reached

let test_max_runs_respected () =
  let program ctx =
    let x = Engine.input ctx ~name:"mr" ~width:32 ~default:0L in
    (* a long chain: more paths than the budget *)
    for i = 0 to 20 do
      ignore
        (Engine.branchf ctx
           (Printf.sprintf "mr:%d" i)
           (Cval.eq x (Cval.of_int ~width:32 (1000 + i))))
    done
  in
  let report = explore ~max_runs:10 program in
  Alcotest.(check bool) "bounded" true (report.Explorer.executions <= 10)

let test_initial_run_counts () =
  let report = explore ~max_runs:1 (fun ctx -> ignore (Engine.input ctx ~name:"ir" ~width:8 ~default:0L)) in
  Alcotest.(check int) "exactly one" 1 report.Explorer.executions;
  Alcotest.(check int) "no negations" 0 report.Explorer.negations_attempted

let test_program_exception_tolerated () =
  let program ctx =
    let x = Engine.input ctx ~name:"ex" ~width:8 ~default:0L in
    if Engine.branchf ctx "ex:b" (Cval.ugt x (Cval.of_int ~width:8 10)) then
      failwith "boom"
  in
  let report = explore program in
  Alcotest.(check bool) "keeps exploring" true (report.Explorer.executions >= 2)

let test_all_strategies_cover_diamond () =
  List.iter
    (fun strategy ->
      let hits = ref [] in
      let report = explore ~strategy (diamond hits) in
      Alcotest.(check bool)
        (Strategy.to_string strategy ^ " reaches full coverage")
        true
        (Explorer.coverage_ratio report = 1.0))
    [ Strategy.Dfs; Strategy.Generational; Strategy.Cover_new; Strategy.Random_negation 3L ]

let test_deterministic () =
  let run () =
    let report = explore (fun ctx ->
        let x = Engine.input ctx ~name:"det" ~width:16 ~default:0L in
        ignore (Engine.branchf ctx "det:a" (Cval.ugt x (Cval.of_int ~width:16 5)));
        ignore (Engine.branchf ctx "det:b" (Cval.ult x (Cval.of_int ~width:16 100))))
    in
    List.map (fun (r : Explorer.run) -> r.assignment) report.Explorer.runs
  in
  Alcotest.(check bool) "same runs" true (run () = run ())

let test_runs_metadata () =
  let report = explore (fun ctx ->
      let x = Engine.input ctx ~name:"meta" ~width:8 ~default:0L in
      ignore (Engine.branchf ctx "meta:b" (Cval.eq x (Cval.of_int ~width:8 9))))
  in
  match report.Explorer.runs with
  | first :: _ ->
    Alcotest.(check int) "index 0" 0 first.Explorer.index;
    Alcotest.(check int) "path length" 1 first.Explorer.path_length;
    Alcotest.(check (list (pair string int64))) "assignment" [ ("meta", 0L) ]
      first.Explorer.assignment
  | [] -> Alcotest.fail "no runs"

let test_seed_constraints_respected () =
  (* an input constrained to <= 32 must never be explored beyond it *)
  let violations = ref 0 in
  let program ctx =
    let len = Engine.input ctx ~name:"scr" ~width:8 ~default:24L in
    (match Cval.sym len with
    | Some e ->
      Engine.constrain ctx (Sym.Binop (Sym.Ule, e, Sym.const ~width:8 32L)) ~nonzero:true
    | None -> ());
    if Cval.to_int len > 32 then incr violations;
    ignore (Engine.branchf ctx "scr:b" (Cval.ugt len (Cval.of_int ~width:8 16)));
    ignore (Engine.branchf ctx "scr:c" (Cval.eq len (Cval.of_int ~width:8 31)))
  in
  ignore (explore program);
  Alcotest.(check int) "never violated" 0 !violations

let test_solver_stats_populated () =
  let report = explore (fun ctx ->
      let x = Engine.input ctx ~name:"ss" ~width:8 ~default:0L in
      ignore (Engine.branchf ctx "ss:b" (Cval.ugt x (Cval.of_int ~width:8 3))))
  in
  Alcotest.(check bool) "solver called" true (report.Explorer.solver_stats.Solver.calls > 0);
  Alcotest.(check bool) "some sat" true (report.Explorer.negations_sat > 0)

let suite =
  [ ("diamond covers all paths", `Quick, test_diamond_all_paths);
    ("deep equality found", `Quick, test_deep_equality);
    ("nested guards", `Quick, test_nested_guards);
    ("max_runs respected", `Quick, test_max_runs_respected);
    ("initial run only", `Quick, test_initial_run_counts);
    ("program exception tolerated", `Quick, test_program_exception_tolerated);
    ("all strategies cover diamond", `Quick, test_all_strategies_cover_diamond);
    ("deterministic", `Quick, test_deterministic);
    ("run metadata", `Quick, test_runs_metadata);
    ("seed constraints respected", `Quick, test_seed_constraints_respected);
    ("solver stats populated", `Quick, test_solver_stats_populated)
  ]
