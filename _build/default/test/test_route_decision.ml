(* Tests for Route normalization and the BGP decision process. *)
open Dice_inet
open Dice_bgp

let nh = Ipv4.of_string "10.0.0.1"
let route ?(lp = None) ?(med = None) ?(origin = Attr.Igp) ?(path = [ 64501 ]) () =
  Route.make ~origin ~local_pref:lp ~med ~as_path:[ Asn.Path.Seq path ] ~next_hop:nh ()

let src ?(addr = "10.0.0.2") ?(asn = 64501) ?(id = "10.0.0.2") ?(ebgp = true) () =
  { Route.peer_addr = Ipv4.of_string addr; peer_asn = asn;
    peer_bgp_id = Ipv4.of_string id; ebgp }

(* ---- Route ---- *)

let test_of_attrs_roundtrip () =
  let r =
    Route.make ~origin:Attr.Egp ~local_pref:(Some 120) ~med:(Some 5)
      ~communities:[ Community.make 1 2 ] ~atomic_aggregate:true
      ~aggregator:(Some (64501, nh))
      ~as_path:[ Asn.Path.Seq [ 1; 2 ] ]
      ~next_hop:nh ()
  in
  match Route.of_attrs (Route.to_attrs r) with
  | Ok r' -> Alcotest.(check bool) "equal" true (Route.equal r r')
  | Error e -> Alcotest.failf "of_attrs: %s" (Attr.error_to_string e)

let test_of_attrs_missing () =
  let missing attrs code =
    match Route.of_attrs attrs with
    | Error (Attr.Missing_wellknown c) -> Alcotest.(check int) "code" code c
    | Error e -> Alcotest.failf "wrong error: %s" (Attr.error_to_string e)
    | Ok _ -> Alcotest.fail "expected error"
  in
  missing [ Attr.As_path []; Attr.Next_hop nh ] 1;
  missing [ Attr.Origin Attr.Igp; Attr.Next_hop nh ] 2;
  missing [ Attr.Origin Attr.Igp; Attr.As_path [] ] 3

let test_origin_neighbor_as () =
  let r = route ~path:[ 64501; 64777; 64999 ] () in
  Alcotest.(check (option int)) "origin" (Some 64999) (Route.origin_as r);
  Alcotest.(check (option int)) "neighbor" (Some 64501) (Route.neighbor_as r)

let test_communities_ops () =
  let c = Community.make 1 1 in
  let r = route () in
  let r = Route.add_community r c in
  Alcotest.(check bool) "added" true (Route.has_community r c);
  let r = Route.add_community r c in
  Alcotest.(check int) "no duplicates" 1 (List.length r.Route.communities);
  let r = Route.remove_community r c in
  Alcotest.(check bool) "removed" false (Route.has_community r c)

let test_prepend () =
  let r = Route.prepend_as (route ~path:[ 2; 3 ] ()) 1 in
  Alcotest.(check (option int)) "new first" (Some 1) (Route.neighbor_as r);
  Alcotest.(check int) "length" 3 (Asn.Path.length r.Route.as_path)

(* ---- Decision ---- *)

let pick a b =
  match Decision.best [ a; b ] with
  | Some c -> c
  | None -> Alcotest.fail "no best"

let test_local_pref_wins () =
  let a = (route ~lp:(Some 200) ~path:[ 1; 2; 3; 4 ] (), src ()) in
  let b = (route ~lp:(Some 100) ~path:[ 1 ] (), src ~addr:"10.0.0.3" ()) in
  Alcotest.(check bool) "higher local-pref despite longer path" true (pick a b == a)

let test_default_local_pref_applies () =
  (* absent LOCAL_PREF counts as 100 *)
  let a = (route ~lp:(Some 99) (), src ()) in
  let b = (route ~lp:None (), src ~addr:"10.0.0.3" ()) in
  Alcotest.(check bool) "implicit 100 beats 99" true (pick a b == b)

let test_static_beats_learned () =
  let a = (route ~lp:(Some 100) (), Route.static_src) in
  let b = (route ~lp:(Some 100) (), src ()) in
  Alcotest.(check bool) "static wins" true (pick a b == a)

let test_shorter_path_wins () =
  let a = (route ~path:[ 1; 2 ] (), src ()) in
  let b = (route ~path:[ 1; 2; 3 ] (), src ~addr:"10.0.0.3" ()) in
  Alcotest.(check bool) "shorter path" true (pick a b == a)

let test_as_set_counts_one () =
  let seta =
    ( Route.make ~as_path:[ Asn.Path.Seq [ 1 ]; Asn.Path.Set [ 2; 3; 4 ] ] ~next_hop:nh (),
      src () )
  in
  let seqb = (route ~path:[ 1; 2; 3 ] (), src ~addr:"10.0.0.3" ()) in
  Alcotest.(check bool) "set counts 1, so 2 < 3" true (pick seta seqb == seta)

let test_origin_order () =
  let a = (route ~origin:Attr.Igp (), src ()) in
  let b = (route ~origin:Attr.Egp (), src ~addr:"10.0.0.3" ()) in
  let c = (route ~origin:Attr.Incomplete (), src ~addr:"10.0.0.4" ()) in
  Alcotest.(check bool) "igp < egp" true (pick a b == a);
  Alcotest.(check bool) "egp < incomplete" true (pick b c == b)

let test_med_same_neighbor () =
  let a = (route ~med:(Some 10) ~path:[ 64501; 9 ] (), src ()) in
  let b = (route ~med:(Some 20) ~path:[ 64501; 8 ] (), src ~addr:"10.0.0.3" ()) in
  Alcotest.(check bool) "lower MED wins (same neighbor AS)" true (pick a b == a)

let test_med_different_neighbor_ignored () =
  (* different neighbor AS: MED not compared; falls through to BGP id *)
  let a = (route ~med:(Some 99) ~path:[ 64501; 9 ] (), src ~id:"10.0.0.1" ()) in
  let b =
    (route ~med:(Some 1) ~path:[ 64502; 8 ] (), src ~addr:"10.0.0.3" ~asn:64502 ~id:"10.0.0.9" ())
  in
  Alcotest.(check bool) "falls to router id" true (pick a b == a)

let test_med_always_compare_config () =
  let config = { Decision.default_config with Decision.always_compare_med = true } in
  let a = (route ~med:(Some 99) ~path:[ 64501; 9 ] (), src ~id:"10.0.0.1" ()) in
  let b =
    (route ~med:(Some 1) ~path:[ 64502; 8 ] (), src ~addr:"10.0.0.3" ~asn:64502 ~id:"10.0.0.9" ())
  in
  Alcotest.(check bool) "MED compared across ASes" true
    (Decision.compare ~config b a < 0)

let test_missing_med_best_by_default () =
  let a = (route ~med:None ~path:[ 64501; 9 ] (), src ()) in
  let b = (route ~med:(Some 1) ~path:[ 64501; 8 ] (), src ~addr:"10.0.0.3" ()) in
  Alcotest.(check bool) "absent MED treated as 0" true (pick a b == a)

let test_missing_med_worst_config () =
  let config = { Decision.default_config with Decision.missing_med_worst = true } in
  let a = (route ~med:None ~path:[ 64501; 9 ] (), src ()) in
  let b = (route ~med:(Some 1) ~path:[ 64501; 8 ] (), src ~addr:"10.0.0.3" ()) in
  Alcotest.(check bool) "absent MED treated as worst" true (Decision.compare ~config b a < 0)

let test_ebgp_over_ibgp () =
  let a = (route (), src ~ebgp:false ()) in
  let b = (route (), src ~addr:"10.0.0.3" ~ebgp:true ()) in
  Alcotest.(check bool) "eBGP preferred" true (pick a b == b)

let test_router_id_tiebreak () =
  let a = (route (), src ~id:"10.0.0.9" ()) in
  let b = (route (), src ~addr:"10.0.0.3" ~id:"10.0.0.1" ()) in
  Alcotest.(check bool) "lower id wins" true (pick a b == b)

let test_peer_addr_final_tiebreak () =
  let a = (route (), src ~addr:"10.0.0.9" ~id:"10.0.0.1" ()) in
  let b = (route (), src ~addr:"10.0.0.3" ~id:"10.0.0.1" ()) in
  Alcotest.(check bool) "lower address wins" true (pick a b == b)

let test_best_empty () =
  Alcotest.(check bool) "none" true (Decision.best [] = None)

let test_best_of_many () =
  let worst = (route ~lp:(Some 10) (), src ()) in
  let mid = (route ~lp:(Some 100) (), src ~addr:"10.0.0.3" ()) in
  let top = (route ~lp:(Some 300) (), src ~addr:"10.0.0.4" ()) in
  match Decision.best [ worst; top; mid ] with
  | Some c -> Alcotest.(check bool) "top" true (c == top)
  | None -> Alcotest.fail "no best"

let test_explain () =
  let a = (route ~lp:(Some 200) (), src ()) in
  let b = (route ~lp:(Some 100) (), src ~addr:"10.0.0.3" ()) in
  Alcotest.(check string) "explains local-pref" "first wins on local-pref"
    (Decision.explain a b)

let prop_total_order =
  (* compare must be a total order: antisymmetric and transitive on a
     random population *)
  let arb =
    QCheck.make
      QCheck.Gen.(
        map
          (fun (lp, plen, org, medv, addr) ->
            ( route
                ~lp:(Some (100 + lp))
                ~origin:(match org with 0 -> Attr.Igp | 1 -> Attr.Egp | _ -> Attr.Incomplete)
                ~med:(Some medv)
                ~path:(List.init (1 + plen) (fun i -> 64501 + i))
                (),
              src ~addr:(Printf.sprintf "10.0.0.%d" (2 + addr)) () ))
          (tup5 (int_range 0 3) (int_range 0 3) (int_range 0 2) (int_range 0 3) (int_range 0 20)))
  in
  QCheck.Test.make ~name:"decision order is antisymmetric and transitive-ish" ~count:200
    (QCheck.triple arb arb arb) (fun (a, b, c) ->
      let cmp = Decision.compare in
      let anti = compare (cmp a b) (-cmp b a) = 0 || (cmp a b = 0 && cmp b a = 0) in
      let trans = if cmp a b <= 0 && cmp b c <= 0 then cmp a c <= 0 else true in
      anti && trans)

let suite =
  [ ("route attrs roundtrip", `Quick, test_of_attrs_roundtrip);
    ("route missing mandatory", `Quick, test_of_attrs_missing);
    ("origin/neighbor AS", `Quick, test_origin_neighbor_as);
    ("communities ops", `Quick, test_communities_ops);
    ("prepend", `Quick, test_prepend);
    ("local-pref wins", `Quick, test_local_pref_wins);
    ("default local-pref", `Quick, test_default_local_pref_applies);
    ("static beats learned", `Quick, test_static_beats_learned);
    ("shorter path wins", `Quick, test_shorter_path_wins);
    ("AS set counts one", `Quick, test_as_set_counts_one);
    ("origin order", `Quick, test_origin_order);
    ("MED same neighbor", `Quick, test_med_same_neighbor);
    ("MED different neighbor ignored", `Quick, test_med_different_neighbor_ignored);
    ("MED always-compare config", `Quick, test_med_always_compare_config);
    ("missing MED best", `Quick, test_missing_med_best_by_default);
    ("missing MED worst config", `Quick, test_missing_med_worst_config);
    ("eBGP over iBGP", `Quick, test_ebgp_over_ibgp);
    ("router id tiebreak", `Quick, test_router_id_tiebreak);
    ("peer address tiebreak", `Quick, test_peer_addr_final_tiebreak);
    ("best of empty", `Quick, test_best_empty);
    ("best of many", `Quick, test_best_of_many);
    ("explain", `Quick, test_explain);
    QCheck_alcotest.to_alcotest prop_total_order
  ]
