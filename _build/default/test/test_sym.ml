(* Tests for the symbolic expression language and concolic values. *)
open Dice_concolic

let env_of bindings =
  let e : Sym.env = Hashtbl.create 8 in
  List.iter (fun (v, x) -> Hashtbl.replace e v.Sym.id x) bindings;
  e

let c32 v = Sym.const ~width:32 v

let test_const_wraps () =
  match Sym.const ~width:8 0x1FFL with
  | Sym.Const { value; width } ->
    Alcotest.(check int64) "wrapped" 0xFFL value;
    Alcotest.(check int) "width" 8 width
  | _ -> Alcotest.fail "expected Const"

let test_var_ids_unique () =
  let a = Sym.var ~name:"a" ~width:8 and b = Sym.var ~name:"b" ~width:8 in
  Alcotest.(check bool) "distinct ids" true (a.Sym.id <> b.Sym.id)

let test_bad_width () =
  Alcotest.check_raises "width 0" (Invalid_argument "Sym.var: width must be in [1, 64]")
    (fun () -> ignore (Sym.var ~name:"x" ~width:0))

let test_eval_arith () =
  let v = Sym.var ~name:"x" ~width:32 in
  let e = env_of [ (v, 10L) ] in
  let check name expect expr = Alcotest.(check int64) name expect (Sym.eval e expr) in
  check "add" 15L (Sym.Binop (Sym.Add, Sym.of_var v, c32 5L));
  check "sub wrap" 0xFFFFFFFBL (Sym.Binop (Sym.Sub, c32 5L, Sym.of_var v));
  check "mul" 30L (Sym.Binop (Sym.Mul, Sym.of_var v, c32 3L));
  check "udiv" 3L (Sym.Binop (Sym.Udiv, Sym.of_var v, c32 3L));
  check "urem" 1L (Sym.Binop (Sym.Urem, Sym.of_var v, c32 3L))

let test_eval_div_by_zero_total () =
  let e = Hashtbl.create 0 in
  Alcotest.(check int64) "div by zero is all-ones" 0xFFL
    (Sym.eval e (Sym.Binop (Sym.Udiv, Sym.const ~width:8 7L, Sym.const ~width:8 0L)));
  Alcotest.(check int64) "rem by zero is lhs" 7L
    (Sym.eval e (Sym.Binop (Sym.Urem, Sym.const ~width:8 7L, Sym.const ~width:8 0L)))

let test_eval_bitops () =
  let e = Hashtbl.create 0 in
  let b8 v = Sym.const ~width:8 v in
  let check name expect expr = Alcotest.(check int64) name expect (Sym.eval e expr) in
  check "and" 0x0CL (Sym.Binop (Sym.And, b8 0x0FL, b8 0xCCL));
  check "or" 0xCFL (Sym.Binop (Sym.Or, b8 0x0FL, b8 0xCCL));
  check "xor" 0xC3L (Sym.Binop (Sym.Xor, b8 0x0FL, b8 0xCCL));
  check "shl wraps" 0xF0L (Sym.Binop (Sym.Shl, b8 0xFFL, b8 4L));
  check "lshr" 0x0FL (Sym.Binop (Sym.Lshr, b8 0xFFL, b8 4L));
  check "bnot" 0xF0L (Sym.Unop (Sym.Bnot, b8 0x0FL));
  check "neg" 0xFFL (Sym.Unop (Sym.Neg, b8 1L))

let test_eval_cmp_unsigned () =
  let e = Hashtbl.create 0 in
  let check name expect expr = Alcotest.(check int64) name expect (Sym.eval e expr) in
  (* 0xFFFFFFFF must compare as large, not as -1 *)
  check "ult unsigned" 1L (Sym.Binop (Sym.Ult, c32 5L, c32 0xFFFFFFFFL));
  check "ugt unsigned" 1L (Sym.Binop (Sym.Ugt, c32 0xFFFFFFFFL, c32 5L));
  check "eq" 1L (Sym.Binop (Sym.Eq, c32 5L, c32 5L));
  check "ne" 0L (Sym.Binop (Sym.Ne, c32 5L, c32 5L));
  check "ule eq" 1L (Sym.Binop (Sym.Ule, c32 5L, c32 5L));
  check "uge eq" 1L (Sym.Binop (Sym.Uge, c32 5L, c32 5L))

let test_eval_lnot () =
  let e = Hashtbl.create 0 in
  Alcotest.(check int64) "lnot 0" 1L (Sym.eval e (Sym.Unop (Sym.Lnot, c32 0L)));
  Alcotest.(check int64) "lnot nonzero" 0L (Sym.eval e (Sym.Unop (Sym.Lnot, c32 7L)))

let test_unbound_var_is_zero () =
  let v = Sym.var ~name:"u" ~width:16 in
  Alcotest.(check int64) "zero" 0L (Sym.eval (Hashtbl.create 0) (Sym.of_var v))

let test_width_rules () =
  let v8 = Sym.var ~name:"w8" ~width:8 and v32 = Sym.var ~name:"w32" ~width:32 in
  Alcotest.(check int) "cmp width 1" 1
    (Sym.width (Sym.Binop (Sym.Eq, Sym.of_var v8, Sym.of_var v32)));
  Alcotest.(check int) "arith width max" 32
    (Sym.width (Sym.Binop (Sym.Add, Sym.of_var v8, Sym.of_var v32)));
  Alcotest.(check int) "lnot width 1" 1 (Sym.width (Sym.Unop (Sym.Lnot, Sym.of_var v32)))

let test_vars_dedup_order () =
  let a = Sym.var ~name:"va" ~width:8 and b = Sym.var ~name:"vb" ~width:8 in
  let expr =
    Sym.Binop (Sym.Add, Sym.Binop (Sym.Add, Sym.of_var b, Sym.of_var a), Sym.of_var b)
  in
  Alcotest.(check (list string)) "first-occurrence order" [ "vb"; "va" ]
    (List.map (fun v -> v.Sym.name) (Sym.vars expr))

let test_subst_eval_except () =
  let a = Sym.var ~name:"sa" ~width:32 and b = Sym.var ~name:"sb" ~width:32 in
  let e = env_of [ (a, 3L); (b, 4L) ] in
  let expr = Sym.Binop (Sym.Add, Sym.of_var a, Sym.of_var b) in
  match Sym.subst_eval_except e ~keep:a.Sym.id expr with
  | Sym.Binop (Sym.Add, Sym.Var v, Sym.Const c) ->
    Alcotest.(check string) "kept var" "sa" v.Sym.name;
    Alcotest.(check int64) "substituted" 4L c.value
  | other -> Alcotest.failf "unexpected shape: %s" (Sym.to_string other)

let test_subst_folds_constants () =
  let a = Sym.var ~name:"fa" ~width:32 and b = Sym.var ~name:"fb" ~width:32 in
  let e = env_of [ (b, 4L) ] in
  let expr =
    Sym.Binop (Sym.Add, Sym.of_var a, Sym.Binop (Sym.Mul, Sym.of_var b, c32 10L))
  in
  match Sym.subst_eval_except e ~keep:a.Sym.id expr with
  | Sym.Binop (Sym.Add, Sym.Var _, Sym.Const c) ->
    Alcotest.(check int64) "folded" 40L c.value
  | other -> Alcotest.failf "unexpected shape: %s" (Sym.to_string other)

let test_equal_compare () =
  let a = Sym.var ~name:"ea" ~width:8 in
  let e1 = Sym.Binop (Sym.Add, Sym.of_var a, Sym.const ~width:8 1L) in
  let e2 = Sym.Binop (Sym.Add, Sym.of_var a, Sym.const ~width:8 1L) in
  Alcotest.(check bool) "structural equal" true (Sym.equal e1 e2);
  Alcotest.(check int) "hash agrees" (Sym.hash e1) (Sym.hash e2);
  Alcotest.(check bool) "different" false
    (Sym.equal e1 (Sym.Binop (Sym.Add, Sym.of_var a, Sym.const ~width:8 2L)))

let test_to_string () =
  let a = Sym.var ~name:"ts" ~width:8 in
  Alcotest.(check string) "render" "(ts + 1)"
    (Sym.to_string (Sym.Binop (Sym.Add, Sym.of_var a, Sym.const ~width:8 1L)))

(* ---- Cval ---- *)

let test_cval_concrete_fast_path () =
  let a = Cval.of_int ~width:32 5 and b = Cval.of_int ~width:32 7 in
  let r = Cval.add a b in
  Alcotest.(check int) "value" 12 (Cval.to_int r);
  Alcotest.(check bool) "no shadow" false (Cval.is_symbolic r)

let test_cval_symbolic_propagates () =
  let v = Sym.var ~name:"cv" ~width:32 in
  let a = Cval.symbolic v 5L and b = Cval.of_int ~width:32 7 in
  let r = Cval.add a b in
  Alcotest.(check int) "concrete part" 12 (Cval.to_int r);
  Alcotest.(check bool) "shadow present" true (Cval.is_symbolic r)

let test_cval_shadow_consistent () =
  (* the symbolic shadow, evaluated under the inputs' concrete values,
     must equal the eagerly computed concrete part *)
  let v = Sym.var ~name:"cc" ~width:32 in
  let e = env_of [ (v, 5L) ] in
  let a = Cval.symbolic v 5L in
  let exprs =
    [ Cval.add a (Cval.of_int ~width:32 7);
      Cval.mul a a;
      Cval.logxor a (Cval.of_int ~width:32 0xFF);
      Cval.shift_right a 2;
      Cval.eq a (Cval.of_int ~width:32 5);
      Cval.ult a (Cval.of_int ~width:32 4)
    ]
  in
  List.iter
    (fun cv ->
      match Cval.sym cv with
      | Some s -> Alcotest.(check int64) "shadow = concrete" (Cval.conc cv) (Sym.eval e s)
      | None -> Alcotest.fail "expected shadow")
    exprs

let test_cval_bool () =
  Alcotest.(check bool) "of_bool true" true (Cval.bool_of (Cval.of_bool true));
  Alcotest.(check bool) "of_bool false" false (Cval.bool_of (Cval.of_bool false));
  Alcotest.(check bool) "not" false (Cval.bool_of (Cval.not_ (Cval.of_bool true)));
  Alcotest.(check bool) "and" true
    (Cval.bool_of (Cval.and_ (Cval.of_bool true) (Cval.of_bool true)));
  Alcotest.(check bool) "or" true
    (Cval.bool_of (Cval.or_ (Cval.of_bool false) (Cval.of_bool true)))

let test_cval_zext () =
  let v = Cval.of_int ~width:8 0xAB in
  let z = Cval.zext ~width:16 v in
  Alcotest.(check int) "value preserved" 0xAB (Cval.to_int z);
  Alcotest.(check int) "wider" 16 (Cval.width z);
  Alcotest.(check int) "shift works after zext" 0xAB00
    (Cval.to_int (Cval.shift_left z 8))

let prop_cval_matches_int64 =
  QCheck.Test.make ~name:"cval ops match int64 reference on 32-bit values" ~count:500
    QCheck.(pair (int_bound 0xFFFFFF) (int_bound 0xFFFFFF))
    (fun (x, y) ->
      let a = Cval.of_int ~width:32 x and b = Cval.of_int ~width:32 y in
      Cval.to_int (Cval.add a b) = (x + y) land 0xFFFFFFFF
      && Cval.to_int (Cval.logand a b) = x land y
      && Cval.to_int (Cval.logor a b) = x lor y
      && Cval.to_int (Cval.logxor a b) = x lxor y
      && Cval.bool_of (Cval.ult a b) = (x < y)
      && Cval.bool_of (Cval.eq a b) = (x = y))

let suite =
  [ ("const wraps", `Quick, test_const_wraps);
    ("var ids unique", `Quick, test_var_ids_unique);
    ("bad width", `Quick, test_bad_width);
    ("eval arith", `Quick, test_eval_arith);
    ("div by zero total", `Quick, test_eval_div_by_zero_total);
    ("eval bitops", `Quick, test_eval_bitops);
    ("eval unsigned cmp", `Quick, test_eval_cmp_unsigned);
    ("eval lnot", `Quick, test_eval_lnot);
    ("unbound var", `Quick, test_unbound_var_is_zero);
    ("width rules", `Quick, test_width_rules);
    ("vars dedup/order", `Quick, test_vars_dedup_order);
    ("subst_eval_except", `Quick, test_subst_eval_except);
    ("subst folds", `Quick, test_subst_folds_constants);
    ("equal/compare/hash", `Quick, test_equal_compare);
    ("to_string", `Quick, test_to_string);
    ("cval concrete fast path", `Quick, test_cval_concrete_fast_path);
    ("cval symbolic propagates", `Quick, test_cval_symbolic_propagates);
    ("cval shadow consistent", `Quick, test_cval_shadow_consistent);
    ("cval bool ops", `Quick, test_cval_bool);
    ("cval zext", `Quick, test_cval_zext);
    QCheck_alcotest.to_alcotest prop_cval_matches_int64
  ]
