(* Tests for the simulated-node adapter: timers, transport, framing,
   auto-restart, observation hooks. *)
open Dice_inet
open Dice_bgp
module Net = Dice_sim.Network

let p = Prefix.of_string

let pair ?(hold = 9) () =
  let mk id other local_as remote_as statics =
    Config_parser.parse
      (Printf.sprintf
         {|
         router id %s;
         local as %d;
         %s
         protocol bgp peer {
           neighbor %s as %d;
           import all; export all;
           hold time %d;
           keepalive time %d;
         }
         |}
         id local_as statics other remote_as hold (hold / 3))
  in
  let net = Net.create () in
  let a =
    Router_node.attach net ~name:"A"
      (Router.create
         (mk "10.0.0.1" "10.0.0.2" 65001 65002
            "protocol static { route 198.51.100.0/24 via 10.0.0.1; }"))
  in
  let b = Router_node.attach net ~name:"B" (Router.create (mk "10.0.0.2" "10.0.0.1" 65002 65001 "")) in
  Net.connect net (Router_node.node_id a) (Router_node.node_id b) ~latency:0.01;
  Router_node.bind_peer a ~neighbor:(Ipv4.of_string "10.0.0.2") ~node:(Router_node.node_id b);
  Router_node.bind_peer b ~neighbor:(Ipv4.of_string "10.0.0.1") ~node:(Router_node.node_id a);
  (net, a, b)

let state_of node addr =
  Option.map Fsm.state_to_string
    (Router.peer_state (Router_node.router node) (Ipv4.of_string addr))

let test_keepalives_beat_hold_timer () =
  let net, a, b = pair ~hold:9 () in
  Router_node.start a;
  Router_node.start b;
  (* 30x the hold time: only keepalives sustain the session *)
  ignore (Net.run ~until:270.0 net);
  Alcotest.(check (option string)) "A up" (Some "Established") (state_of a "10.0.0.2");
  Alcotest.(check (option string)) "B up" (Some "Established") (state_of b "10.0.0.1")

let test_hold_expires_when_peer_dies () =
  let net, a, b = pair ~hold:9 () in
  Router_node.start a;
  Router_node.start b;
  ignore (Net.run ~until:20.0 net);
  Alcotest.(check (option string)) "up first" (Some "Established") (state_of a "10.0.0.2");
  (* the link dies: every frame (keepalives included) is silently lost,
     and A's hold timer must eventually expire *)
  Net.disconnect net (Router_node.node_id a) (Router_node.node_id b);
  ignore (Net.run ~until:(Net.now net +. 40.0) net);
  Alcotest.(check bool) "A tore the session down" true
    (state_of a "10.0.0.2" <> Some "Established")

let test_route_withdrawn_after_session_loss () =
  let net, a, b = pair ~hold:9 () in
  Router_node.start a;
  Router_node.start b;
  ignore (Net.run ~until:20.0 net);
  Alcotest.(check bool) "B learned the static" true
    (Router.best_route (Router_node.router b) (p "198.51.100.0/24") <> None);
  (* A's transport to B fails explicitly *)
  ignore
    (Router.handle_event (Router_node.router b) ~peer:(Ipv4.of_string "10.0.0.1")
       Fsm.Tcp_failed);
  Alcotest.(check bool) "B flushed the route" true
    (Router.best_route (Router_node.router b) (p "198.51.100.0/24") = None)

let test_on_output_observer () =
  let net, a, b = pair () in
  let outputs = ref 0 in
  Router_node.on_output a (fun _ -> incr outputs);
  Router_node.start a;
  Router_node.start b;
  ignore (Net.run ~until:20.0 net);
  Alcotest.(check bool) "observed outputs" true (!outputs > 0)

let test_on_update_observer () =
  let net, a, b = pair () in
  let seen = ref [] in
  Router_node.on_update b (fun ~peer:_ u ->
      seen := List.map Prefix.to_string u.Msg.nlri @ !seen);
  Router_node.start a;
  Router_node.start b;
  ignore (Net.run ~until:20.0 net);
  Alcotest.(check bool) "tapped the static announcement" true
    (List.mem "198.51.100.0/24" !seen)

let test_frame_bgp_roundtrip () =
  let framed = Router_node.frame_bgp Msg.Keepalive in
  Alcotest.(check int) "tag byte" 0x03 (Char.code (Bytes.get framed 0));
  let payload = Bytes.sub framed 1 (Bytes.length framed - 1) in
  Alcotest.(check bool) "payload decodes" true (Msg.decode payload = Ok Msg.Keepalive)

let test_garbage_frame_ignored () =
  let net, a, b = pair () in
  Router_node.start a;
  Router_node.start b;
  ignore (Net.run ~until:20.0 net);
  (* junk tag byte: dropped without tearing anything down *)
  Net.send net ~src:(Router_node.node_id b) ~dst:(Router_node.node_id a)
    (Bytes.of_string "\xEEgarbage");
  Net.send net ~src:(Router_node.node_id b) ~dst:(Router_node.node_id a) Bytes.empty;
  ignore (Net.run ~until:(Net.now net +. 5.0) net);
  Alcotest.(check (option string)) "still up" (Some "Established") (state_of a "10.0.0.2")

let test_malformed_bgp_payload_resets_session () =
  let net, a, b = pair () in
  Router_node.start a;
  Router_node.start b;
  ignore (Net.run ~until:20.0 net);
  (* a valid frame tag carrying garbage BGP bytes: RFC behavior is a
     NOTIFICATION and session reset *)
  let junk = Bytes.make 30 '\x00' in
  let framed = Bytes.cat (Bytes.make 1 '\x03') junk in
  Net.send net ~src:(Router_node.node_id b) ~dst:(Router_node.node_id a) framed;
  ignore (Net.run ~until:(Net.now net +. 2.0) net);
  Alcotest.(check bool) "A reset the session" true (state_of a "10.0.0.2" <> Some "Established");
  (* with auto-restart both sides re-establish *)
  ignore (Net.run ~until:(Net.now net +. 60.0) net);
  Alcotest.(check (option string)) "re-established" (Some "Established") (state_of a "10.0.0.2")

let suite =
  [ ("keepalives beat hold timer", `Quick, test_keepalives_beat_hold_timer);
    ("hold expires when peer dies", `Quick, test_hold_expires_when_peer_dies);
    ("route withdrawn after session loss", `Quick, test_route_withdrawn_after_session_loss);
    ("on_output observer", `Quick, test_on_output_observer);
    ("on_update observer", `Quick, test_on_update_observer);
    ("frame_bgp roundtrip", `Quick, test_frame_bgp_roundtrip);
    ("garbage frame ignored", `Quick, test_garbage_frame_ignored);
    ("malformed payload resets session", `Quick, test_malformed_bgp_payload_resets_session)
  ]
