(* Tests for Path sites/conditions, Coverage and the Engine runtime. *)
open Dice_concolic

(* ---- Path / Site ---- *)

let test_site_intern () =
  let a = Path.Site.intern "t:site-a" in
  let b = Path.Site.intern "t:site-a" in
  Alcotest.(check int) "same id" (Path.Site.id a) (Path.Site.id b);
  let c = Path.Site.intern "t:site-b" in
  Alcotest.(check bool) "distinct" true (Path.Site.id a <> Path.Site.id c)

let test_site_of_existing () =
  let a = Path.Site.intern "t:site-x" in
  Alcotest.(check int) "lookup" (Path.Site.id a) (Path.Site.id (Path.Site.of_existing "t:site-x"));
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Path.Site.of_existing "t:definitely-not-registered"))

let test_negate () =
  let c = { Path.expr = Sym.const ~width:1 1L; expected_nonzero = true } in
  Alcotest.(check bool) "flipped" false (Path.negate c).Path.expected_nonzero;
  Alcotest.(check bool) "double negation" true (Path.negate (Path.negate c)).Path.expected_nonzero

let test_constr_holds () =
  let v = Sym.var ~name:"ph" ~width:8 in
  let env : Sym.env = Hashtbl.create 4 in
  Hashtbl.replace env v.Sym.id 7L;
  let c = { Path.expr = Sym.Binop (Sym.Eq, Sym.of_var v, Sym.const ~width:8 7L);
            expected_nonzero = true } in
  Alcotest.(check bool) "holds" true (Path.constr_holds env c);
  Hashtbl.replace env v.Sym.id 8L;
  Alcotest.(check bool) "fails" false (Path.constr_holds env c)

let test_signature () =
  let s1 = Path.Site.intern "t:sig1" and s2 = Path.Site.intern "t:sig2" in
  let e site dir = { Path.site; constr = { Path.expr = Sym.const ~width:1 1L; expected_nonzero = dir } } in
  let a = Path.signature [ e s1 true; e s2 false ] in
  let b = Path.signature [ e s1 true; e s2 false ] in
  let c = Path.signature [ e s1 true; e s2 true ] in
  let d = Path.signature [ e s2 false; e s1 true ] in
  Alcotest.(check int64) "stable" a b;
  Alcotest.(check bool) "direction-sensitive" true (a <> c);
  Alcotest.(check bool) "order-sensitive" true (a <> d)

(* ---- Coverage ---- *)

let test_coverage () =
  let cov = Coverage.create () in
  let s = Path.Site.intern "t:cov" in
  Alcotest.(check bool) "new" true (Coverage.record cov s true);
  Alcotest.(check bool) "repeat" false (Coverage.record cov s true);
  Alcotest.(check bool) "half covered" false (Coverage.fully_covered cov s);
  ignore (Coverage.record cov s false);
  Alcotest.(check bool) "fully covered" true (Coverage.fully_covered cov s);
  Alcotest.(check int) "directions" 2 (Coverage.direction_count cov);
  Alcotest.(check int) "sites" 1 (Coverage.site_count cov)

let test_coverage_merge () =
  let a = Coverage.create () and b = Coverage.create () in
  let s1 = Path.Site.intern "t:cm1" and s2 = Path.Site.intern "t:cm2" in
  ignore (Coverage.record a s1 true);
  ignore (Coverage.record b s2 false);
  Coverage.merge_into ~dst:a b;
  Alcotest.(check int) "merged" 2 (Coverage.direction_count a);
  Alcotest.(check bool) "has b's" true (Coverage.covered a s2 false)

(* ---- Engine ---- *)

let test_null_ctx_concrete () =
  let ctx = Engine.null () in
  let v = Engine.input ctx ~name:"n" ~width:32 ~default:42L in
  Alcotest.(check bool) "no shadow" false (Cval.is_symbolic v);
  Alcotest.(check int) "default" 42 (Cval.to_int v);
  ignore (Engine.branchf ctx "t:null-branch" (Cval.of_bool true));
  Alcotest.(check int) "nothing recorded" 0 (Path.length (Engine.path ctx))

let test_recording_input_default () =
  let space = Engine.Space.create () in
  let ctx = Engine.create ~space ~overrides:(Hashtbl.create 0) () in
  let v = Engine.input ctx ~name:"i" ~width:16 ~default:7L in
  Alcotest.(check bool) "symbolic" true (Cval.is_symbolic v);
  Alcotest.(check int) "default used" 7 (Cval.to_int v)

let test_recording_input_override () =
  let space = Engine.Space.create () in
  let var = Engine.Space.var space ~name:"o" ~width:16 in
  let overrides : Sym.env = Hashtbl.create 4 in
  Hashtbl.replace overrides var.Sym.id 99L;
  let ctx = Engine.create ~space ~overrides () in
  let v = Engine.input ctx ~name:"o" ~width:16 ~default:7L in
  Alcotest.(check int) "override wins" 99 (Cval.to_int v)

let test_branch_records_symbolic_only () =
  let space = Engine.Space.create () in
  let ctx = Engine.create ~space ~overrides:(Hashtbl.create 0) () in
  let v = Engine.input ctx ~name:"b" ~width:8 ~default:5L in
  let taken = Engine.branchf ctx "t:sym-branch" (Cval.ugt v (Cval.of_int ~width:8 3)) in
  Alcotest.(check bool) "concretely taken" true taken;
  ignore (Engine.branchf ctx "t:conc-branch" (Cval.of_bool true));
  Alcotest.(check int) "only symbolic recorded" 1 (Path.length (Engine.path ctx))

let test_branch_direction_matches_concrete () =
  let space = Engine.Space.create () in
  let ctx = Engine.create ~space ~overrides:(Hashtbl.create 0) () in
  let v = Engine.input ctx ~name:"d" ~width:8 ~default:1L in
  let taken = Engine.branchf ctx "t:dir" (Cval.ugt v (Cval.of_int ~width:8 3)) in
  Alcotest.(check bool) "not taken" false taken;
  match Engine.path ctx with
  | [ e ] -> Alcotest.(check bool) "recorded as zero" false e.Path.constr.Path.expected_nonzero
  | _ -> Alcotest.fail "expected exactly one entry"

let test_seed_constraints () =
  let space = Engine.Space.create () in
  let ctx = Engine.create ~space ~overrides:(Hashtbl.create 0) () in
  let v = Engine.input ctx ~name:"s" ~width:8 ~default:5L in
  (match Cval.sym v with
  | Some e -> Engine.constrain ctx (Sym.Binop (Sym.Ule, e, Sym.const ~width:8 32L)) ~nonzero:true
  | None -> Alcotest.fail "expected symbolic");
  Alcotest.(check int) "one seed" 1 (List.length (Engine.seed_constraints ctx));
  Alcotest.(check int) "path empty" 0 (Path.length (Engine.path ctx))

let test_space_stability () =
  let space = Engine.Space.create () in
  let a = Engine.Space.var space ~name:"stable" ~width:8 in
  let b = Engine.Space.var space ~name:"stable" ~width:8 in
  Alcotest.(check int) "memoized" a.Sym.id b.Sym.id;
  Alcotest.check_raises "width conflict"
    (Invalid_argument "Engine.Space.var: stable re-used with width 16 (was 8)") (fun () ->
      ignore (Engine.Space.var space ~name:"stable" ~width:16))

let test_assignment () =
  let space = Engine.Space.create () in
  let ctx = Engine.create ~space ~overrides:(Hashtbl.create 0) () in
  ignore (Engine.input ctx ~name:"a1" ~width:8 ~default:1L);
  ignore (Engine.input ctx ~name:"a2" ~width:8 ~default:2L);
  Alcotest.(check (list (pair string int64)))
    "named values" [ ("a1", 1L); ("a2", 2L) ]
    (Engine.assignment ctx ~space)

let test_env_reflects_inputs () =
  let space = Engine.Space.create () in
  let ctx = Engine.create ~space ~overrides:(Hashtbl.create 0) () in
  ignore (Engine.input ctx ~name:"e1" ~width:8 ~default:9L);
  let var = Engine.Space.var space ~name:"e1" ~width:8 in
  Alcotest.(check (option int64)) "env" (Some 9L) (Hashtbl.find_opt (Engine.env ctx) var.Sym.id)

let suite =
  [ ("site intern", `Quick, test_site_intern);
    ("site of_existing", `Quick, test_site_of_existing);
    ("negate", `Quick, test_negate);
    ("constr_holds", `Quick, test_constr_holds);
    ("path signature", `Quick, test_signature);
    ("coverage", `Quick, test_coverage);
    ("coverage merge", `Quick, test_coverage_merge);
    ("null ctx concrete", `Quick, test_null_ctx_concrete);
    ("input default", `Quick, test_recording_input_default);
    ("input override", `Quick, test_recording_input_override);
    ("branch records symbolic only", `Quick, test_branch_records_symbolic_only);
    ("branch direction", `Quick, test_branch_direction_matches_concrete);
    ("seed constraints", `Quick, test_seed_constraints);
    ("space stability", `Quick, test_space_stability);
    ("assignment", `Quick, test_assignment);
    ("env reflects inputs", `Quick, test_env_reflects_inputs)
  ]
