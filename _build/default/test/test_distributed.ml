(* Tests for cross-network exploration (Distributed): remote agents,
   narrow-interface verdicts, and the system-wide checker. *)
open Dice_inet
open Dice_bgp
open Dice_core

let p = Prefix.of_string
let provider_side = Ipv4.of_string "10.0.2.1"
let collector = Ipv4.of_string "10.0.3.2"

let establish router peer remote_as =
  ignore (Router.handle_event router ~peer Fsm.Manual_start);
  ignore (Router.handle_event router ~peer Fsm.Tcp_connected);
  ignore
    (Router.handle_msg router ~peer
       (Msg.Open
          { Msg.version = 4; my_as = remote_as land 0xFFFF; hold_time = 90; bgp_id = peer;
            capabilities = [ Msg.Cap_as4 remote_as ] }));
  ignore (Router.handle_msg router ~peer Msg.Keepalive)

(* An upstream with a private table: routes for 198.51.0.0/16 and
   8.8.8.0/24 learned from its collector, nothing exported to the
   provider. *)
let upstream () =
  let r =
    Router.create
      (Config_parser.parse
         {|
         router id 10.0.2.2;
         local as 64700;
         protocol bgp provider { neighbor 10.0.2.1 as 64510; import all; export none; }
         protocol bgp collector { neighbor 10.0.3.2 as 64701; import all; export all; }
         anycast [ 192.88.99.0/24 ];
         |})
  in
  establish r provider_side 64510;
  establish r collector 64701;
  List.iter
    (fun (prefix, origin) ->
      let route =
        Route.make ~origin:Attr.Igp
          ~as_path:[ Asn.Path.Seq [ 64701; origin ] ]
          ~next_hop:collector ()
      in
      ignore
        (Router.handle_msg r ~peer:collector
           (Msg.Update { withdrawn = []; attrs = Route.to_attrs route; nlri = [ p prefix ] })))
    [ ("198.51.0.0/16", 64999); ("8.8.8.0/24", 64888); ("192.88.99.0/24", 64777) ];
  r

let mk_agent router =
  Distributed.agent ~name:"up" ~addr:(Ipv4.of_string "10.0.2.2")
    ~explorer_addr:provider_side router

let announcement ?(origin_asn = 64510) prefix =
  Msg.Update
    {
      withdrawn = [];
      attrs =
        Route.to_attrs
          (Route.make ~origin:Attr.Igp
             ~as_path:[ Asn.Path.Seq [ 64510; origin_asn ] ]
             ~next_hop:provider_side ());
      nlri = [ p prefix ];
    }

let test_probe_conflict () =
  let up = upstream () in
  let agent = mk_agent up in
  match Distributed.probe agent ~from:provider_side (announcement "198.51.100.0/24") with
  | [ v ] ->
    Alcotest.(check bool) "accepted" true v.Distributed.accepted;
    Alcotest.(check bool) "conflicts with the private /16" true v.Distributed.origin_conflict;
    Alcotest.(check bool) "would propagate to the collector" true
      (v.Distributed.would_propagate >= 1)
  | vs -> Alcotest.failf "expected one verdict, got %d" (List.length vs)

let test_probe_coverage_leak () =
  let up = upstream () in
  let agent = mk_agent up in
  (* a /8 super-block covering the remote's 198.51.0.0/16 (origin 64999) *)
  match Distributed.probe agent ~from:provider_side (announcement "198.0.0.0/8") with
  | [ v ] ->
    Alcotest.(check bool) "no covering conflict" false v.Distributed.origin_conflict;
    Alcotest.(check bool) "covers the /16" true (v.Distributed.covers_foreign >= 1)
  | _ -> Alcotest.fail "expected one verdict"

let test_probe_no_conflict_unheld_space () =
  let up = upstream () in
  let agent = mk_agent up in
  match Distributed.probe agent ~from:provider_side (announcement "100.0.0.0/16") with
  | [ v ] ->
    Alcotest.(check bool) "accepted" true v.Distributed.accepted;
    Alcotest.(check bool) "no conflict" false v.Distributed.origin_conflict;
    Alcotest.(check int) "covers nothing" 0 v.Distributed.covers_foreign
  | _ -> Alcotest.fail "expected one verdict"

let test_probe_same_origin_no_conflict () =
  let up = upstream () in
  let agent = mk_agent up in
  match
    Distributed.probe agent ~from:provider_side (announcement ~origin_asn:64888 "8.8.8.0/24")
  with
  | [ v ] -> Alcotest.(check bool) "same origin" false v.Distributed.origin_conflict
  | _ -> Alcotest.fail "expected one verdict"

let test_probe_anycast_whitelisted () =
  let up = upstream () in
  let agent = mk_agent up in
  match Distributed.probe agent ~from:provider_side (announcement "192.88.99.0/24") with
  | [ v ] -> Alcotest.(check bool) "whitelisted by the remote" false v.Distributed.origin_conflict
  | _ -> Alcotest.fail "expected one verdict"

let test_probe_never_mutates_live () =
  let up = upstream () in
  let agent = mk_agent up in
  let before = Router.snapshot up in
  ignore (Distributed.probe agent ~from:provider_side (announcement "198.51.100.0/24"));
  ignore (Distributed.probe agent ~from:provider_side (announcement "1.2.3.0/24"));
  Alcotest.(check bytes) "remote live state untouched" before (Router.snapshot up)

let test_probe_non_update () =
  let up = upstream () in
  let agent = mk_agent up in
  Alcotest.(check int) "keepalive yields nothing" 0
    (List.length (Distributed.probe agent ~from:provider_side Msg.Keepalive))

let test_checkpoint_caching () =
  let up = upstream () in
  let agent = mk_agent up in
  ignore (Distributed.probe agent ~from:provider_side (announcement "1.1.1.0/24"));
  ignore (Distributed.probe agent ~from:provider_side (announcement "2.2.2.0/24"));
  Alcotest.(check int) "one checkpoint for two probes" 1
    (Distributed.checkpoints_taken agent);
  (* remote live router moves on -> re-checkpoint *)
  let route =
    Route.make ~origin:Attr.Igp ~as_path:[ Asn.Path.Seq [ 64701 ] ] ~next_hop:collector ()
  in
  ignore
    (Router.handle_msg up ~peer:collector
       (Msg.Update { withdrawn = []; attrs = Route.to_attrs route; nlri = [ p "3.3.3.0/24" ] }));
  ignore (Distributed.probe agent ~from:provider_side (announcement "4.4.4.0/24"));
  Alcotest.(check int) "fresh checkpoint after remote progress" 2
    (Distributed.checkpoints_taken agent)

(* ---- the checker, end to end on the provider ---- *)

let provider_with_customer () =
  let r =
    Router.create
      (Dice_topology.Threerouter.provider_config
         Dice_topology.Threerouter.Partially_correct)
  in
  establish r Dice_topology.Threerouter.customer_addr 64501;
  establish r Dice_topology.Threerouter.internet_addr 64700;
  let customer_route =
    Route.make ~origin:Attr.Igp
      ~as_path:[ Asn.Path.Seq [ Dice_topology.Threerouter.customer_as ] ]
      ~next_hop:Dice_topology.Threerouter.customer_addr ()
  in
  List.iter
    (fun prefix ->
      ignore
        (Router.handle_msg r ~peer:Dice_topology.Threerouter.customer_addr
           (Msg.Update
              { Msg.withdrawn = []; attrs = Route.to_attrs customer_route; nlri = [ prefix ] })))
    Dice_topology.Threerouter.customer_prefixes;
  (r, customer_route)

let test_checker_finds_remote_conflicts () =
  let up = upstream () in
  let agent =
    Distributed.agent ~name:"up" ~addr:Dice_topology.Threerouter.internet_addr
      ~explorer_addr:provider_side up
  in
  let provider, customer_route = provider_with_customer () in
  let cfg =
    { Orchestrator.default_cfg with
      Orchestrator.checkers = [ Hijack.checker; Distributed.checker ~agents:[ agent ] ];
      explorer =
        { Dice_concolic.Explorer.default_config with
          Dice_concolic.Explorer.max_runs = 256;
          max_depth = 96;
        };
    }
  in
  let dice = Orchestrator.create ~cfg provider in
  Orchestrator.observe dice ~peer:Dice_topology.Threerouter.customer_addr
    ~prefix:(p "203.0.113.0/24") ~route:customer_route;
  let report = Orchestrator.explore dice in
  let remote =
    List.filter
      (fun (f : Checker.fault) -> f.Checker.checker = "remote-origin-conflict")
      report.Orchestrator.faults
  in
  let local =
    List.filter
      (fun (f : Checker.fault) -> f.Checker.checker = "origin-hijack")
      report.Orchestrator.faults
  in
  (* the conflicting state lives only at the remote: local checking is
     blind, the narrow interface is not *)
  Alcotest.(check int) "no local origin conflicts possible" 0 (List.length local);
  Alcotest.(check bool) "remote conflicts found" true (List.length remote > 0);
  Alcotest.(check bool) "probes happened" true (Distributed.probes_performed agent > 0);
  (* live routers untouched *)
  Alcotest.(check bool) "remote live untouched" true
    (Distributed.checkpoints_taken agent >= 1)

let test_checker_ignores_unknown_destinations () =
  let up = upstream () in
  let agent =
    Distributed.agent ~name:"up" ~addr:(Ipv4.of_string "9.9.9.9")
      ~explorer_addr:provider_side up
  in
  let provider, customer_route = provider_with_customer () in
  let cfg =
    { Orchestrator.default_cfg with
      Orchestrator.checkers = [ Distributed.checker ~agents:[ agent ] ];
    }
  in
  let dice = Orchestrator.create ~cfg provider in
  Orchestrator.observe dice ~peer:Dice_topology.Threerouter.customer_addr
    ~prefix:(p "203.0.113.0/24") ~route:customer_route;
  ignore (Orchestrator.explore dice);
  Alcotest.(check int) "no probe reaches a mismatched address" 0
    (Distributed.probes_performed agent)

let suite =
  [ ("probe: conflict with private RIB", `Quick, test_probe_conflict);
    ("probe: unheld space accepted, no conflict", `Quick, test_probe_no_conflict_unheld_space);
    ("probe: same origin clean", `Quick, test_probe_same_origin_no_conflict);
    ("probe: remote anycast whitelist", `Quick, test_probe_anycast_whitelisted);
    ("probe: never mutates the remote live router", `Quick, test_probe_never_mutates_live);
    ("probe: non-update yields nothing", `Quick, test_probe_non_update);
    ("checkpoint caching", `Quick, test_checkpoint_caching);
    ("checker finds remote-only conflicts", `Slow, test_checker_finds_remote_conflicts);
    ("checker ignores unknown destinations", `Quick, test_checker_ignores_unknown_destinations)
  ]
