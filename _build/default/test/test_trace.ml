(* Tests for the trace substrate: AS graph, generation, MRT format,
   replay. *)
open Dice_inet
module Rng = Dice_util.Rng
module Asgraph = Dice_trace.Asgraph
module Gen = Dice_trace.Gen
module Mrt = Dice_trace.Mrt
module Replay = Dice_trace.Replay

let small_params =
  { Gen.default_params with Gen.n_prefixes = 300; n_ases = 80; duration = 120.0 }

(* ---- Asgraph ---- *)

let graph () = Asgraph.generate ~rng:(Rng.create 5L) ~n_ases:100 ()

let test_graph_shape () =
  let g = graph () in
  Alcotest.(check int) "n" 100 (Asgraph.n_ases g);
  Alcotest.(check int) "asns dense" 100 (Array.length (Asgraph.asns g));
  Alcotest.(check int) "base" Asgraph.base_asn (Asgraph.asns g).(0)

let test_graph_tier1_no_providers () =
  let g = graph () in
  Alcotest.(check bool) "tier1" true (Asgraph.is_tier1 g Asgraph.base_asn);
  Alcotest.(check (list int)) "no providers" [] (Asgraph.providers g Asgraph.base_asn)

let test_graph_everyone_has_provider () =
  let g = graph () in
  Array.iter
    (fun asn ->
      if not (Asgraph.is_tier1 g asn) then
        Alcotest.(check bool)
          (Printf.sprintf "AS%d has a provider" asn)
          true
          (Asgraph.providers g asn <> []))
    (Asgraph.asns g)

let test_graph_degree_positive () =
  let g = graph () in
  Array.iter
    (fun asn -> Alcotest.(check bool) "degree > 0" true (Asgraph.degree g asn > 0))
    (Asgraph.asns g)

let test_graph_unknown_as_rejected () =
  let g = graph () in
  Alcotest.check_raises "unknown" (Invalid_argument "Asgraph: unknown AS 1") (fun () ->
      ignore (Asgraph.providers g 1))

let test_path_shape () =
  let g = graph () in
  let rng = Rng.create 6L in
  for _ = 1 to 50 do
    let origin = Asgraph.random_as g ~rng in
    let path = Asgraph.path_from_origin g ~rng ~collector_as:64700 ~origin in
    (match path with
    | collector :: _ -> Alcotest.(check int) "collector first" 64700 collector
    | [] -> Alcotest.fail "empty path");
    (match List.rev path with
    | last :: _ -> Alcotest.(check int) "origin last" origin last
    | [] -> ());
    (* loop-free *)
    Alcotest.(check int) "no duplicates" (List.length path)
      (List.length (List.sort_uniq compare path))
  done

(* ---- Gen ---- *)

let test_gen_counts () =
  let t = Gen.generate small_params in
  Alcotest.(check int) "dump size" 300 (Array.length t.Gen.dump);
  Alcotest.(check bool) "has events" true (Array.length t.Gen.events > 0);
  Alcotest.(check (float 0.0)) "duration" 120.0 t.Gen.duration

let test_gen_deterministic () =
  let a = Gen.generate small_params and b = Gen.generate small_params in
  Alcotest.(check bool) "same dump" true (a.Gen.dump = b.Gen.dump);
  Alcotest.(check bool) "same events" true (a.Gen.events = b.Gen.events)

let test_gen_seed_sensitive () =
  let a = Gen.generate small_params in
  let b = Gen.generate { small_params with Gen.seed = 43L } in
  Alcotest.(check bool) "different" true (a.Gen.dump <> b.Gen.dump)

let test_gen_dump_sorted_and_valid () =
  let t = Gen.generate small_params in
  let ok = ref true in
  Array.iteri
    (fun i (e : Gen.entry) ->
      if i > 0 then
        if Prefix.compare t.Gen.dump.(i - 1).Gen.prefix e.Gen.prefix > 0 then ok := false;
      (match e.Gen.as_path with
      | collector :: _ -> if collector <> small_params.Gen.collector_as then ok := false
      | [] -> ok := false);
      let len = Prefix.len e.Gen.prefix in
      if len < 8 || len > 24 then ok := false)
    t.Gen.dump;
  Alcotest.(check bool) "sorted, collector-first, len in [8,24]" true !ok

let test_gen_events_chronological () =
  let t = Gen.generate small_params in
  let ok = ref true in
  Array.iteri
    (fun i ev ->
      if i > 0 && Gen.event_time t.Gen.events.(i - 1) > Gen.event_time ev then ok := false;
      if Gen.event_time ev > t.Gen.duration then ok := false)
    t.Gen.events;
  Alcotest.(check bool) "chronological, within duration" true !ok

let test_gen_origin_of () =
  let t = Gen.generate small_params in
  let e = t.Gen.dump.(0) in
  Alcotest.(check (option int)) "matches path tail"
    (match List.rev e.Gen.as_path with
    | last :: _ -> Some last
    | [] -> None)
    (Gen.origin_of t e.Gen.prefix)

let test_gen_to_updates () =
  let t = Gen.generate small_params in
  let msgs = Gen.to_updates t ~peer_as:64700 ~next_hop:(Ipv4.of_string "10.0.2.2") in
  Alcotest.(check int) "one per entry" 300 (List.length msgs);
  match msgs with
  | Dice_bgp.Msg.Update u :: _ ->
    Alcotest.(check int) "one nlri" 1 (List.length u.Dice_bgp.Msg.nlri);
    Alcotest.(check bool) "decodable route" true
      (Result.is_ok (Dice_bgp.Route.of_attrs u.Dice_bgp.Msg.attrs))
  | _ -> Alcotest.fail "expected updates"

(* ---- Mrt ---- *)

let test_mrt_roundtrip () =
  let t = Gen.generate small_params in
  let t' = Mrt.read (Mrt.write t) in
  Alcotest.(check int) "collector" t.Gen.collector_as t'.Gen.collector_as;
  Alcotest.(check bool) "dump preserved" true (t.Gen.dump = t'.Gen.dump);
  Alcotest.(check bool) "events preserved" true (t.Gen.events = t'.Gen.events);
  Alcotest.(check (float 0.001)) "duration" t.Gen.duration t'.Gen.duration

let test_mrt_corrupt_rejected () =
  (match Mrt.read (Bytes.of_string "BOGUS") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection");
  let t = Gen.generate { small_params with Gen.n_prefixes = 5 } in
  let b = Mrt.write t in
  let truncated = Bytes.sub b 0 (Bytes.length b - 3) in
  match Mrt.read truncated with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected truncation error"

let test_mrt_file_io () =
  let t = Gen.generate { small_params with Gen.n_prefixes = 20 } in
  let path = Filename.temp_file "dice_trace" ".mrt" in
  Mrt.save path t;
  let t' = Mrt.load path in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true (t.Gen.dump = t'.Gen.dump)

(* ---- Replay ---- *)

let loaded_router () =
  let cfg =
    Dice_bgp.Config_parser.parse
      {|
      router id 10.0.2.1;
      local as 64510;
      protocol bgp internet { neighbor 10.0.2.2 as 64700; import all; export none; }
      |}
  in
  let r = Dice_bgp.Router.create cfg in
  let peer = Ipv4.of_string "10.0.2.2" in
  ignore (Dice_bgp.Router.handle_event r ~peer Dice_bgp.Fsm.Manual_start);
  ignore (Dice_bgp.Router.handle_event r ~peer Dice_bgp.Fsm.Tcp_connected);
  ignore
    (Dice_bgp.Router.handle_msg r ~peer
       (Dice_bgp.Msg.Open
          { Dice_bgp.Msg.version = 4; my_as = 64700; hold_time = 90; bgp_id = peer;
            capabilities = [ Dice_bgp.Msg.Cap_as4 64700 ] }));
  ignore (Dice_bgp.Router.handle_msg r ~peer Dice_bgp.Msg.Keepalive);
  (r, peer)

let test_replay_feed_dump () =
  let r, peer = loaded_router () in
  let t = Gen.generate small_params in
  let progress = Replay.feed_dump r ~peer ~next_hop:peer t in
  Alcotest.(check int) "all sent" 300 progress.Replay.updates_sent;
  Alcotest.(check bool) "all processed" true (progress.Replay.updates_processed >= 300);
  (* distinct prefixes in the dump end up in the table *)
  let distinct =
    Array.to_list t.Gen.dump
    |> List.map (fun (e : Gen.entry) -> e.Gen.prefix)
    |> List.sort_uniq Prefix.compare
  in
  Alcotest.(check int) "table size" (List.length distinct)
    (Dice_bgp.Rib.Loc.cardinal (Dice_bgp.Router.loc_rib r))

let test_replay_feed_events () =
  let r, peer = loaded_router () in
  let t = Gen.generate small_params in
  ignore (Replay.feed_dump r ~peer ~next_hop:peer t);
  let progress = Replay.feed_events r ~peer ~next_hop:peer t in
  Alcotest.(check int) "all events sent" (Array.length t.Gen.events)
    progress.Replay.updates_sent

let test_replay_on_update_hook () =
  let r, peer = loaded_router () in
  let t = Gen.generate { small_params with Gen.n_prefixes = 50 } in
  let called = ref 0 in
  ignore (Replay.feed_dump ~on_update:(fun _ -> incr called) r ~peer ~next_hop:peer t);
  Alcotest.(check int) "hook per update" 50 !called

let suite =
  [ ("graph shape", `Quick, test_graph_shape);
    ("tier1 has no providers", `Quick, test_graph_tier1_no_providers);
    ("everyone has a provider", `Quick, test_graph_everyone_has_provider);
    ("degrees positive", `Quick, test_graph_degree_positive);
    ("unknown AS rejected", `Quick, test_graph_unknown_as_rejected);
    ("path shape", `Quick, test_path_shape);
    ("gen counts", `Quick, test_gen_counts);
    ("gen deterministic", `Quick, test_gen_deterministic);
    ("gen seed-sensitive", `Quick, test_gen_seed_sensitive);
    ("gen dump valid", `Quick, test_gen_dump_sorted_and_valid);
    ("gen events chronological", `Quick, test_gen_events_chronological);
    ("gen origin_of", `Quick, test_gen_origin_of);
    ("gen to_updates", `Quick, test_gen_to_updates);
    ("mrt roundtrip", `Quick, test_mrt_roundtrip);
    ("mrt corrupt rejected", `Quick, test_mrt_corrupt_rejected);
    ("mrt file io", `Quick, test_mrt_file_io);
    ("replay feed_dump", `Quick, test_replay_feed_dump);
    ("replay feed_events", `Quick, test_replay_feed_events);
    ("replay on_update hook", `Quick, test_replay_on_update_hook)
  ]
