(* Tests for Dice_inet.Prefix_trie, including a model-based qcheck suite
   comparing against a naive association list. *)
open Dice_inet
module T = Prefix_trie

let p = Prefix.of_string

let of_pairs l = T.of_list (List.map (fun (s, v) -> (p s, v)) l)

let test_empty () =
  Alcotest.(check bool) "is_empty" true (T.is_empty T.empty);
  Alcotest.(check int) "cardinal" 0 (T.cardinal T.empty);
  Alcotest.(check bool) "find" true (T.find_opt (p "10.0.0.0/8") T.empty = None);
  Alcotest.(check bool) "lpm" true (T.longest_match 0 T.empty = None)

let test_add_find () =
  let t = of_pairs [ ("10.0.0.0/8", 1); ("10.0.0.0/16", 2); ("192.168.0.0/16", 3) ] in
  Alcotest.(check (option int)) "/8" (Some 1) (T.find_opt (p "10.0.0.0/8") t);
  Alcotest.(check (option int)) "/16" (Some 2) (T.find_opt (p "10.0.0.0/16") t);
  Alcotest.(check (option int)) "other" (Some 3) (T.find_opt (p "192.168.0.0/16") t);
  Alcotest.(check (option int)) "absent" None (T.find_opt (p "10.0.0.0/24") t);
  Alcotest.(check int) "cardinal" 3 (T.cardinal t)

let test_replace () =
  let t = T.add (p "10.0.0.0/8") 2 (of_pairs [ ("10.0.0.0/8", 1) ]) in
  Alcotest.(check (option int)) "replaced" (Some 2) (T.find_opt (p "10.0.0.0/8") t);
  Alcotest.(check int) "no duplicate" 1 (T.cardinal t)

let test_default_route () =
  let t = of_pairs [ ("0.0.0.0/0", 99); ("10.0.0.0/8", 1) ] in
  Alcotest.(check (option int)) "default" (Some 99) (T.find_opt Prefix.default t);
  match T.longest_match (Ipv4.of_string "200.0.0.1") t with
  | Some (q, 99) -> Alcotest.(check string) "lpm default" "0.0.0.0/0" (Prefix.to_string q)
  | _ -> Alcotest.fail "expected default route"

let test_remove () =
  let t = of_pairs [ ("10.0.0.0/8", 1); ("10.0.0.0/16", 2) ] in
  let t = T.remove (p "10.0.0.0/8") t in
  Alcotest.(check (option int)) "removed" None (T.find_opt (p "10.0.0.0/8") t);
  Alcotest.(check (option int)) "sibling stays" (Some 2) (T.find_opt (p "10.0.0.0/16") t);
  Alcotest.(check int) "cardinal" 1 (T.cardinal t)

let test_remove_absent () =
  let t = of_pairs [ ("10.0.0.0/8", 1) ] in
  let t' = T.remove (p "11.0.0.0/8") t in
  Alcotest.(check int) "unchanged" 1 (T.cardinal t')

let test_longest_match () =
  let t = of_pairs [ ("10.0.0.0/8", 1); ("10.1.0.0/16", 2); ("10.1.2.0/24", 3) ] in
  let lpm a =
    match T.longest_match (Ipv4.of_string a) t with
    | Some (_, v) -> Some v
    | None -> None
  in
  Alcotest.(check (option int)) "deepest" (Some 3) (lpm "10.1.2.200");
  Alcotest.(check (option int)) "mid" (Some 2) (lpm "10.1.3.1");
  Alcotest.(check (option int)) "top" (Some 1) (lpm "10.200.0.1");
  Alcotest.(check (option int)) "miss" None (lpm "11.0.0.1")

let test_covering () =
  let t = of_pairs [ ("10.0.0.0/8", 1); ("10.1.0.0/16", 2); ("10.1.2.0/24", 3) ] in
  let names q = List.map (fun (x, _) -> Prefix.to_string x) (T.covering (p q) t) in
  Alcotest.(check (list string)) "all covering incl exact"
    [ "10.0.0.0/8"; "10.1.0.0/16"; "10.1.2.0/24" ]
    (names "10.1.2.0/24");
  Alcotest.(check (list string)) "covering of a /25"
    [ "10.0.0.0/8"; "10.1.0.0/16"; "10.1.2.0/24" ]
    (names "10.1.2.0/25");
  Alcotest.(check (list string)) "sibling /24 not covering" [ "10.0.0.0/8"; "10.1.0.0/16" ]
    (names "10.1.3.0/24");
  Alcotest.(check (list string)) "none" [] (names "11.0.0.0/24")

let test_covered () =
  let t = of_pairs [ ("10.0.0.0/8", 1); ("10.1.0.0/16", 2); ("10.1.2.0/24", 3); ("11.0.0.0/8", 4) ] in
  let names q = List.map (fun (x, _) -> Prefix.to_string x) (T.covered (p q) t) in
  Alcotest.(check (list string)) "subtree" [ "10.1.0.0/16"; "10.1.2.0/24" ] (names "10.1.0.0/16");
  Alcotest.(check (list string)) "all under /8"
    [ "10.0.0.0/8"; "10.1.0.0/16"; "10.1.2.0/24" ]
    (names "10.0.0.0/8");
  Alcotest.(check (list string)) "none" [] (names "12.0.0.0/8")

let test_to_list_sorted () =
  let t = of_pairs [ ("192.168.0.0/16", 1); ("10.0.0.0/8", 2); ("10.0.0.0/16", 3) ] in
  Alcotest.(check (list string)) "prefix order"
    [ "10.0.0.0/8"; "10.0.0.0/16"; "192.168.0.0/16" ]
    (List.map (fun (x, _) -> Prefix.to_string x) (T.to_list t))

let test_update () =
  let t = of_pairs [ ("10.0.0.0/8", 1) ] in
  let t = T.update (p "10.0.0.0/8") (fun v -> Option.map (( + ) 10) v) t in
  Alcotest.(check (option int)) "updated" (Some 11) (T.find_opt (p "10.0.0.0/8") t);
  let t = T.update (p "10.0.0.0/8") (fun _ -> None) t in
  Alcotest.(check bool) "deleted" true (T.is_empty t);
  let t = T.update (p "1.0.0.0/8") (fun _ -> Some 5) t in
  Alcotest.(check (option int)) "inserted" (Some 5) (T.find_opt (p "1.0.0.0/8") t)

let test_map_filter () =
  let t = of_pairs [ ("10.0.0.0/8", 1); ("11.0.0.0/8", 2) ] in
  let doubled = T.map (( * ) 2) t in
  Alcotest.(check (option int)) "mapped" (Some 4) (T.find_opt (p "11.0.0.0/8") doubled);
  let odd = T.filter (fun _ v -> v mod 2 = 1) t in
  Alcotest.(check int) "filtered" 1 (T.cardinal odd)

let test_equal () =
  let a = of_pairs [ ("10.0.0.0/8", 1); ("11.0.0.0/8", 2) ] in
  let b = of_pairs [ ("11.0.0.0/8", 2); ("10.0.0.0/8", 1) ] in
  Alcotest.(check bool) "insertion-order independent" true (T.equal Int.equal a b);
  Alcotest.(check bool) "value-sensitive" false
    (T.equal Int.equal a (T.add (p "10.0.0.0/8") 9 b))

let test_descent_reaches_bound_nodes () =
  let t = of_pairs [ ("10.0.0.0/8", 1); ("10.1.0.0/16", 2); ("10.1.2.0/24", 3) ] in
  let visited = T.descent (Ipv4.of_string "10.1.2.7") t in
  let bound = List.filter snd visited |> List.map (fun (q, _) -> Prefix.to_string q) in
  Alcotest.(check (list string)) "all containing bound nodes visited"
    [ "10.0.0.0/8"; "10.1.0.0/16"; "10.1.2.0/24" ]
    bound

let test_descent_stops_at_mismatch () =
  let t = of_pairs [ ("10.0.0.0/8", 1) ] in
  let visited = T.descent (Ipv4.of_string "11.0.0.0") t in
  (* root node 10/8 does not contain the address; it is still reported *)
  Alcotest.(check int) "visits the mismatching node" 1 (List.length visited)

(* ---- model-based property tests ---- *)

let arb_op =
  let open QCheck in
  let arb_prefix =
    map
      (fun (a, l) -> Prefix.make (a land 0xFFFFFFFF) l)
      (pair (int_bound 0xFFFFFF) (int_bound 32))
  in
  let arb_addr = map (fun a -> a land 0xFFFFFFFF) (int_bound 0xFFFFFF) in
  oneof
    [ map (fun (pfx, v) -> `Add (pfx, v)) (pair arb_prefix small_int);
      map (fun pfx -> `Remove pfx) arb_prefix;
      map (fun pfx -> `Find pfx) arb_prefix;
      map (fun a -> `Lpm a) arb_addr
    ]

(* reference model: association list keyed by prefix *)
let model_add pfx v m = (pfx, v) :: List.remove_assoc pfx m
let model_remove pfx m = List.remove_assoc pfx m
let model_find pfx m = List.assoc_opt pfx m

let model_lpm a m =
  List.fold_left
    (fun acc (pfx, v) ->
      if Prefix.contains pfx a then begin
        match acc with
        | Some (q, _) when Prefix.len q >= Prefix.len pfx -> acc
        | Some _ | None -> Some (pfx, v)
      end
      else acc)
    None m

let prop_model =
  QCheck.Test.make ~name:"trie agrees with assoc-list model" ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 0 60) arb_op)
    (fun ops ->
      let trie = ref T.empty and model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | `Add (pfx, v) ->
            trie := T.add pfx v !trie;
            model := model_add pfx v !model;
            T.cardinal !trie = List.length !model
          | `Remove pfx ->
            trie := T.remove pfx !trie;
            model := model_remove pfx !model;
            T.cardinal !trie = List.length !model
          | `Find pfx -> T.find_opt pfx !trie = model_find pfx !model
          | `Lpm a -> begin
            match (T.longest_match a !trie, model_lpm a !model) with
            | None, None -> true
            | Some (q1, v1), Some (q2, v2) -> Prefix.equal q1 q2 && v1 = v2
            | Some _, None | None, Some _ -> false
          end)
        ops)

let prop_to_list_sorted =
  QCheck.Test.make ~name:"to_list is sorted and duplicate-free" ~count:200
    (QCheck.list_of_size
       (QCheck.Gen.int_range 0 40)
       (QCheck.map
          (fun (a, l) -> (Prefix.make (a land 0xFFFFFFFF) l, a))
          (QCheck.pair (QCheck.int_bound 0xFFFFFF) (QCheck.int_bound 32))))
    (fun pairs ->
      let t = T.of_list pairs in
      let keys = List.map fst (T.to_list t) in
      let rec sorted = function
        | a :: (b :: _ as rest) -> Prefix.compare a b < 0 && sorted rest
        | [ _ ] | [] -> true
      in
      sorted keys)

let prop_covering_covered_dual =
  QCheck.Test.make ~name:"covering/covered agree with subsumes" ~count:200
    (QCheck.pair
       (QCheck.list_of_size
          (QCheck.Gen.int_range 0 30)
          (QCheck.map
             (fun (a, l) -> (Prefix.make (a land 0xFFFFFFFF) l, 0))
             (QCheck.pair (QCheck.int_bound 0xFFFFFF) (QCheck.int_bound 32))))
       (QCheck.map
          (fun (a, l) -> Prefix.make (a land 0xFFFFFFFF) l)
          (QCheck.pair (QCheck.int_bound 0xFFFFFF) (QCheck.int_bound 32))))
    (fun (pairs, q) ->
      let t = T.of_list pairs in
      let covering = List.map fst (T.covering q t) in
      let covered = List.map fst (T.covered q t) in
      let all = List.map fst (T.to_list t) in
      let expect_covering = List.filter (fun x -> Prefix.subsumes x q) all in
      let expect_covered = List.filter (fun x -> Prefix.subsumes q x) all in
      List.sort Prefix.compare covering = List.sort Prefix.compare expect_covering
      && List.sort Prefix.compare covered = List.sort Prefix.compare expect_covered)

let suite =
  [ ("empty", `Quick, test_empty);
    ("add/find", `Quick, test_add_find);
    ("replace", `Quick, test_replace);
    ("default route", `Quick, test_default_route);
    ("remove", `Quick, test_remove);
    ("remove absent", `Quick, test_remove_absent);
    ("longest match", `Quick, test_longest_match);
    ("covering", `Quick, test_covering);
    ("covered", `Quick, test_covered);
    ("to_list sorted", `Quick, test_to_list_sorted);
    ("update", `Quick, test_update);
    ("map/filter", `Quick, test_map_filter);
    ("equal", `Quick, test_equal);
    ("descent bound nodes", `Quick, test_descent_reaches_bound_nodes);
    ("descent mismatch", `Quick, test_descent_stops_at_mismatch);
    QCheck_alcotest.to_alcotest prop_model;
    QCheck_alcotest.to_alcotest prop_to_list_sorted;
    QCheck_alcotest.to_alcotest prop_covering_covered_dual
  ]
