test/test_trace.ml: Alcotest Array Bytes Dice_bgp Dice_inet Dice_trace Dice_util Filename Ipv4 List Prefix Printf Result Sys
