test/test_router.ml: Alcotest Asn Attr Bytes Community Config_parser Croute Dice_bgp Dice_concolic Dice_core Dice_inet Engine Fsm Hashtbl Ipv4 List Msg Option Prefix Rib Route Router
