test/test_explorer.ml: Alcotest Cval Dice_concolic Engine Explorer List Printf Solver Strategy Sym
