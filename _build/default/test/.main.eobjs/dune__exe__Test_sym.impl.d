test/test_sym.ml: Alcotest Cval Dice_concolic Hashtbl List QCheck QCheck_alcotest Sym
