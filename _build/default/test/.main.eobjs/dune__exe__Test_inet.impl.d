test/test_inet.ml: Alcotest Asn Community Dice_inet Ipv4 List Prefix
