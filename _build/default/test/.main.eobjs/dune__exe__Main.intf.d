test/main.mli:
