test/test_edges.ml: Alcotest Array Asn Attr Config_parser Dice_bgp Dice_concolic Dice_core Dice_inet Dice_trace Fsm Hashtbl Ipv4 List Msg Prefix Printf Rib Route Router
