test/test_route_decision.ml: Alcotest Asn Attr Community Decision Dice_bgp Dice_inet Ipv4 List Printf QCheck QCheck_alcotest Route
