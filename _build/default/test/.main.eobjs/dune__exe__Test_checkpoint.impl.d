test/test_checkpoint.ml: Alcotest Bytes Char Dice_checkpoint Fun Gen List QCheck QCheck_alcotest
