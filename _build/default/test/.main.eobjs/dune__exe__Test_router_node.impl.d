test/test_router_node.ml: Alcotest Bytes Char Config_parser Dice_bgp Dice_inet Dice_sim Fsm Ipv4 List Msg Option Prefix Printf Router Router_node
