test/test_trie.ml: Alcotest Dice_inet Int Ipv4 List Option Prefix Prefix_trie QCheck QCheck_alcotest
