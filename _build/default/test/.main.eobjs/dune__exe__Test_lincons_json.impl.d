test/test_lincons_json.ml: Alcotest Dice_concolic Dice_core Dice_inet Dice_util Float Hashtbl Int64 Lincons List Path Printf QCheck QCheck_alcotest Solver String Sym
