test/test_rng.ml: Alcotest Array Dice_util Fun List
