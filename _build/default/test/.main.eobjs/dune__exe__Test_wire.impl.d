test/test_wire.ml: Alcotest Bytes Char Dice_wire Gen List QCheck QCheck_alcotest
