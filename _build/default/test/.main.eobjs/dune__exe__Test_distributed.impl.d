test/test_distributed.ml: Alcotest Asn Attr Checker Config_parser Dice_bgp Dice_concolic Dice_core Dice_inet Dice_topology Distributed Fsm Hijack Ipv4 List Msg Orchestrator Prefix Route Router
