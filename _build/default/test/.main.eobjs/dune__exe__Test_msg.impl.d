test/test_msg.ml: Alcotest Asn Attr Bytes Char Dice_bgp Dice_inet Ipv4 List Msg Prefix QCheck QCheck_alcotest String
