test/test_integration.ml: Alcotest Array Asn Config_parser Dice_bgp Dice_inet Dice_sim Dice_topology Dice_trace Fsm Ipv4 List Option Prefix Rib Route Router Router_node
