test/test_fsm.ml: Alcotest Bytes Dice_bgp Fsm List Msg
