test/test_attr.ml: Alcotest Asn Attr Community Dice_bgp Dice_inet Dice_wire Ipv4 List QCheck QCheck_alcotest String
