test/test_util.ml: Alcotest Bytes Dice_util Float List String
