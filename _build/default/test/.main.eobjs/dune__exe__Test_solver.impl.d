test/test_solver.ml: Alcotest Dice_concolic Hashtbl Int64 Interval List Path Printf QCheck QCheck_alcotest Solver Sym
