test/test_sim.ml: Alcotest Bytes Dice_sim Fun List
