test/test_engine.ml: Alcotest Coverage Cval Dice_concolic Engine Hashtbl List Path Sym
