(* Tests for the Router: import/export, decision integration,
   checkpointing, and the concolic import entry point. *)
open Dice_inet
open Dice_bgp
open Dice_concolic

let p = Prefix.of_string
let ip = Ipv4.of_string

(* A router with two eBGP peers and a static route. *)
let config () =
  Config_parser.parse
    {|
    router id 10.0.0.1;
    local as 64510;
    filter cust_in {
      if net ~ [ 203.0.113.0/24{24,28} ] then { bgp_local_pref = 120; accept; }
      reject;
    }
    protocol static { route 192.0.2.0/24 via 10.0.0.1; }
    protocol bgp customer {
      neighbor 10.0.1.2 as 64501;
      import filter cust_in;
      export all;
    }
    protocol bgp transit {
      neighbor 10.0.2.2 as 64700;
      import all;
      export all;
    }
    |}

let customer = ip "10.0.1.2"
let transit = ip "10.0.2.2"

(* Drive a peer's FSM to Established directly. *)
let establish router peer remote_as =
  ignore (Router.handle_event router ~peer Fsm.Manual_start);
  ignore (Router.handle_event router ~peer Fsm.Tcp_connected);
  let o =
    { Msg.version = 4; my_as = remote_as land 0xFFFF; hold_time = 90; bgp_id = peer;
      capabilities = [ Msg.Cap_as4 remote_as ] }
  in
  ignore (Router.handle_msg router ~peer (Msg.Open o));
  Router.handle_msg router ~peer Msg.Keepalive

let ready () =
  let r = Router.create (config ()) in
  ignore (establish r customer 64501);
  ignore (establish r transit 64700);
  r

let attrs ?(path = [ 64700; 64701 ]) ?(origin = Attr.Igp) ?med ?communities () =
  [ Attr.Origin origin; Attr.As_path [ Asn.Path.Seq path ]; Attr.Next_hop (ip "10.9.9.9") ]
  @ (match med with Some m -> [ Attr.Med m ] | None -> [])
  @ (match communities with Some cs -> [ Attr.Communities cs ] | None -> [])

let announce router ~peer ?path ?origin ?med ?communities prefix =
  Router.handle_msg router ~peer
    (Msg.Update { withdrawn = []; attrs = attrs ?path ?origin ?med ?communities (); nlri = [ p prefix ] })

let withdraw router ~peer prefix =
  Router.handle_msg router ~peer (Msg.Update { withdrawn = [ p prefix ]; attrs = []; nlri = [] })

let to_peer_updates outputs =
  List.filter_map
    (function
      | Router.To_peer (dst, Msg.Update u) -> Some (dst, u)
      | _ -> None)
    outputs

let test_create_with_statics () =
  let r = Router.create (config ()) in
  Alcotest.(check int) "static installed" 1 (Rib.Loc.cardinal (Router.loc_rib r));
  match Router.best_route r (p "192.0.2.0/24") with
  | Some e -> Alcotest.(check bool) "static src" true (e.Rib.Loc.src = Route.static_src)
  | None -> Alcotest.fail "static route missing"

let test_session_establishment () =
  let r = Router.create (config ()) in
  Alcotest.(check (option string)) "idle initially" (Some "Idle")
    (Option.map Fsm.state_to_string (Router.peer_state r customer));
  ignore (establish r customer 64501);
  Alcotest.(check (option string)) "established" (Some "Established")
    (Option.map Fsm.state_to_string (Router.peer_state r customer))

let test_open_wrong_as_rejected () =
  let r = Router.create (config ()) in
  ignore (Router.handle_event r ~peer:customer Fsm.Manual_start);
  ignore (Router.handle_event r ~peer:customer Fsm.Tcp_connected);
  let o =
    { Msg.version = 4; my_as = 65000; hold_time = 90; bgp_id = customer; capabilities = [] }
  in
  let outs = Router.handle_msg r ~peer:customer (Msg.Open o) in
  Alcotest.(check bool) "notification sent" true
    (List.exists
       (function Router.To_peer (_, Msg.Notification n) -> n.Msg.code = 2 | _ -> false)
       outs);
  Alcotest.(check (option string)) "back to idle" (Some "Idle")
    (Option.map Fsm.state_to_string (Router.peer_state r customer))

let test_initial_advertisement () =
  let r = Router.create (config ()) in
  let outs = establish r transit 64700 in
  let updates = to_peer_updates outs in
  (* the static route is advertised to the newly established peer *)
  Alcotest.(check bool) "announces static" true
    (List.exists (fun (_, u) -> List.mem (p "192.0.2.0/24") u.Msg.nlri) updates)

let test_import_and_propagate () =
  let r = ready () in
  let outs = announce r ~peer:transit "8.8.8.0/24" in
  (match Router.best_route r (p "8.8.8.0/24") with
  | Some e ->
    Alcotest.(check (option int)) "origin AS" (Some 64701) (Route.origin_as e.Rib.Loc.route);
    Alcotest.(check bool) "from transit" true (e.Rib.Loc.src.Route.peer_addr = transit)
  | None -> Alcotest.fail "route not installed");
  (* propagated to the customer with our AS prepended and next-hop self *)
  let cust_updates = List.filter (fun (d, _) -> d = customer) (to_peer_updates outs) in
  match cust_updates with
  | [ (_, u) ] -> begin
    match Route.of_attrs u.Msg.attrs with
    | Ok route ->
      Alcotest.(check (option int)) "prepended" (Some 64510) (Route.neighbor_as route);
      Alcotest.(check string) "next hop self" "10.0.0.1" (Ipv4.to_string route.Route.next_hop);
      Alcotest.(check (option int)) "no local pref on eBGP" None route.Route.local_pref
    | Error e -> Alcotest.failf "bad attrs: %s" (Attr.error_to_string e)
  end
  | _ -> Alcotest.fail "expected exactly one update to the customer"

let test_split_horizon () =
  let r = ready () in
  let outs = announce r ~peer:transit "8.8.8.0/24" in
  let back = List.filter (fun (d, _) -> d = transit) (to_peer_updates outs) in
  Alcotest.(check int) "not advertised back" 0 (List.length back)

let test_import_filter_rejects () =
  let r = ready () in
  ignore (announce r ~peer:customer ~path:[ 64501 ] "10.99.0.0/16");
  Alcotest.(check bool) "rejected by policy" true
    (Router.best_route r (p "10.99.0.0/16") = None)

let test_import_filter_accepts_with_lp () =
  let r = ready () in
  ignore (announce r ~peer:customer ~path:[ 64501 ] "203.0.113.0/24");
  match Router.best_route r (p "203.0.113.0/24") with
  | Some e ->
    Alcotest.(check (option int)) "filter set lp" (Some 120) e.Rib.Loc.route.Route.local_pref
  | None -> Alcotest.fail "expected acceptance"

let test_loop_detection () =
  let r = ready () in
  (* path contains our own AS: must be dropped *)
  ignore (announce r ~peer:transit ~path:[ 64700; 64510; 64702 ] "9.9.9.0/24");
  Alcotest.(check bool) "looped route dropped" true (Router.best_route r (p "9.9.9.0/24") = None)

let test_withdraw () =
  let r = ready () in
  ignore (announce r ~peer:transit "8.8.8.0/24");
  let outs = withdraw r ~peer:transit "8.8.8.0/24" in
  Alcotest.(check bool) "removed" true (Router.best_route r (p "8.8.8.0/24") = None);
  (* and the customer hears the withdrawal *)
  let wd =
    List.exists
      (fun (d, u) -> d = customer && List.mem (p "8.8.8.0/24") u.Msg.withdrawn)
      (to_peer_updates outs)
  in
  Alcotest.(check bool) "withdrawal propagated" true wd

let test_decision_prefers_better_peer () =
  let r = ready () in
  ignore (announce r ~peer:transit ~path:[ 64700; 64701; 64702 ] "7.7.0.0/16");
  (* the customer announces the same prefix with a shorter path but it
     fails the import filter, so transit stays *)
  ignore (announce r ~peer:customer ~path:[ 64501 ] "7.7.0.0/16");
  match Router.best_route r (p "7.7.0.0/16") with
  | Some e -> Alcotest.(check bool) "transit still best" true (e.Rib.Loc.src.Route.peer_addr = transit)
  | None -> Alcotest.fail "route lost"

let test_decision_local_pref_beats_path () =
  let r = ready () in
  ignore (announce r ~peer:transit ~path:[ 64700 ] "203.0.113.0/24");
  (* customer route gets LOCAL_PREF 120 from the filter and must win over
     the shorter transit path (default 100) *)
  ignore (announce r ~peer:customer ~path:[ 64501; 64999 ] "203.0.113.0/24");
  match Router.best_route r (p "203.0.113.0/24") with
  | Some e -> Alcotest.(check bool) "customer wins" true (e.Rib.Loc.src.Route.peer_addr = customer)
  | None -> Alcotest.fail "route missing"

let test_no_export_community () =
  let r = ready () in
  let outs =
    announce r ~peer:transit ~communities:[ Community.no_export ] "6.6.6.0/24"
  in
  Alcotest.(check bool) "installed locally" true (Router.best_route r (p "6.6.6.0/24") <> None);
  Alcotest.(check int) "not exported" 0 (List.length (to_peer_updates outs))

let test_treat_as_withdraw_on_bad_attrs () =
  let r = ready () in
  ignore (announce r ~peer:transit "5.5.5.0/24");
  (* same prefix, broken attribute list (no ORIGIN) — decoded Updates
     can't represent this, so drive process via handle_bytes with a raw
     crafted message that passes the wire decoder but fails Route.of_attrs:
     not constructible; instead send attrs missing entirely *)
  let u = Msg.Update { withdrawn = []; attrs = []; nlri = [ p "5.5.5.0/24" ] } in
  ignore (Router.handle_msg r ~peer:transit u);
  Alcotest.(check bool) "previous announcement withdrawn" true
    (Router.best_route r (p "5.5.5.0/24") = None)

let test_session_down_flushes () =
  let r = ready () in
  ignore (announce r ~peer:transit "8.8.8.0/24");
  ignore (Router.handle_event r ~peer:transit Fsm.Tcp_failed);
  Alcotest.(check bool) "routes flushed" true (Router.best_route r (p "8.8.8.0/24") = None);
  Alcotest.(check (list string)) "only customer established" [ "10.0.1.2" ]
    (List.map Ipv4.to_string (Router.established_peers r))

let test_updates_counter () =
  let r = ready () in
  let before = Router.updates_processed r in
  ignore (announce r ~peer:transit "8.8.8.0/24");
  ignore (withdraw r ~peer:transit "8.8.8.0/24");
  Alcotest.(check bool) "counted" true (Router.updates_processed r > before)

let test_malformed_bytes_notification () =
  let r = ready () in
  let outs = Router.handle_bytes r ~peer:transit (Bytes.make 30 '\x00') in
  Alcotest.(check bool) "header error notification" true
    (List.exists
       (function Router.To_peer (_, Msg.Notification n) -> n.Msg.code = 1 | _ -> false)
       outs)

(* ---- snapshot / restore ---- *)

let test_snapshot_roundtrip () =
  let r = ready () in
  ignore (announce r ~peer:transit "8.8.8.0/24");
  ignore (announce r ~peer:customer ~path:[ 64501 ] "203.0.113.0/24");
  let image = Router.snapshot r in
  let r' = Router.restore (config ()) image in
  Alcotest.(check int) "loc-rib size" (Rib.Loc.cardinal (Router.loc_rib r))
    (Rib.Loc.cardinal (Router.loc_rib r'));
  Alcotest.(check (list string)) "established peers"
    (List.map Ipv4.to_string (Router.established_peers r))
    (List.map Ipv4.to_string (Router.established_peers r'));
  Alcotest.(check int) "updates counter" (Router.updates_processed r)
    (Router.updates_processed r');
  (* routes survive byte-for-byte *)
  (match (Router.best_route r (p "8.8.8.0/24"), Router.best_route r' (p "8.8.8.0/24")) with
  | Some a, Some b ->
    Alcotest.(check bool) "route equal" true (Route.equal a.Rib.Loc.route b.Rib.Loc.route);
    Alcotest.(check bool) "src equal" true (a.Rib.Loc.src = b.Rib.Loc.src)
  | _ -> Alcotest.fail "route lost in snapshot");
  (* a second snapshot of the restored router is identical *)
  Alcotest.(check bytes) "deterministic" image (Router.snapshot r')

let test_snapshot_restore_behaves () =
  (* the restored router must *behave* identically, not just look alike *)
  let r = ready () in
  ignore (announce r ~peer:transit "8.8.8.0/24");
  let r' = Router.restore (config ()) (Router.snapshot r) in
  ignore (withdraw r ~peer:transit "8.8.8.0/24");
  ignore (withdraw r' ~peer:transit "8.8.8.0/24");
  Alcotest.(check bytes) "same evolution" (Router.snapshot r) (Router.snapshot r')

let test_restore_bad_image_rejected () =
  (match Router.restore (config ()) (Bytes.of_string "garbage!") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection");
  match Router.restore (config ()) (Bytes.of_string "NOTMAGIC") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

(* ---- import_concolic ---- *)

let test_import_concolic_accept () =
  let r = ready () in
  let route =
    Route.make ~origin:Attr.Igp ~as_path:[ Asn.Path.Seq [ 64501 ] ] ~next_hop:customer ()
  in
  let cr = Croute.of_route (p "203.0.113.0/24") route in
  let ctx = Engine.null () in
  let outcome = Router.import_concolic ~ctx r ~peer:customer cr in
  Alcotest.(check bool) "accepted" true outcome.Router.accepted;
  Alcotest.(check bool) "installed" true outcome.Router.installed;
  Alcotest.(check bool) "no previous" true (outcome.Router.previous_best = None)

let test_import_concolic_reject () =
  let r = ready () in
  let route =
    Route.make ~origin:Attr.Igp ~as_path:[ Asn.Path.Seq [ 64501 ] ] ~next_hop:customer ()
  in
  let cr = Croute.of_route (p "10.99.0.0/16") route in
  let outcome = Router.import_concolic ~ctx:(Engine.null ()) r ~peer:customer cr in
  Alcotest.(check bool) "rejected" false outcome.Router.accepted;
  Alcotest.(check bool) "not installed" false outcome.Router.installed

let test_import_concolic_previous_best () =
  let r = ready () in
  ignore (announce r ~peer:transit ~path:[ 64700; 64999 ] "203.0.113.0/24");
  let route =
    Route.make ~origin:Attr.Igp ~as_path:[ Asn.Path.Seq [ 64501 ] ] ~next_hop:customer ()
  in
  let cr = Croute.of_route (p "203.0.113.0/24") route in
  let outcome = Router.import_concolic ~ctx:(Engine.null ()) r ~peer:customer cr in
  (match outcome.Router.previous_best with
  | Some e ->
    Alcotest.(check (option int)) "old origin" (Some 64999) (Route.origin_as e.Rib.Loc.route)
  | None -> Alcotest.fail "expected a previous best");
  Alcotest.(check bool) "new route wins (lp 120)" true outcome.Router.installed

let test_import_concolic_unknown_peer () =
  let r = ready () in
  let route = Route.make ~as_path:[ Asn.Path.Seq [ 1 ] ] ~next_hop:customer () in
  let cr = Croute.of_route (p "1.0.0.0/8") route in
  match Router.import_concolic ~ctx:(Engine.null ()) r ~peer:(ip "1.2.3.4") cr with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_import_concolic_records_constraints () =
  let r = ready () in
  let space = Engine.Space.create () in
  let ctx = Engine.create ~space ~overrides:(Hashtbl.create 0) () in
  let route =
    Route.make ~origin:Attr.Igp ~as_path:[ Asn.Path.Seq [ 64501 ] ] ~next_hop:customer ()
  in
  let cr =
    Dice_core.Symbolize.croute ctx ~tag:"t" ~prefix:(p "203.0.113.0/24") ~route
  in
  let outcome = Router.import_concolic ~ctx r ~peer:customer cr in
  Alcotest.(check bool) "accepted" true outcome.Router.accepted;
  Alcotest.(check bool) "path constraints recorded" true
    (Dice_concolic.Path.length (Engine.path ctx) > 0)

let suite =
  [ ("create with statics", `Quick, test_create_with_statics);
    ("session establishment", `Quick, test_session_establishment);
    ("OPEN with wrong AS rejected", `Quick, test_open_wrong_as_rejected);
    ("initial advertisement", `Quick, test_initial_advertisement);
    ("import and propagate", `Quick, test_import_and_propagate);
    ("split horizon", `Quick, test_split_horizon);
    ("import filter rejects", `Quick, test_import_filter_rejects);
    ("import filter accepts with lp", `Quick, test_import_filter_accepts_with_lp);
    ("loop detection", `Quick, test_loop_detection);
    ("withdraw", `Quick, test_withdraw);
    ("decision prefers valid peer", `Quick, test_decision_prefers_better_peer);
    ("local-pref beats path length", `Quick, test_decision_local_pref_beats_path);
    ("no-export community", `Quick, test_no_export_community);
    ("treat-as-withdraw", `Quick, test_treat_as_withdraw_on_bad_attrs);
    ("session down flushes", `Quick, test_session_down_flushes);
    ("updates counter", `Quick, test_updates_counter);
    ("malformed bytes notification", `Quick, test_malformed_bytes_notification);
    ("snapshot roundtrip", `Quick, test_snapshot_roundtrip);
    ("snapshot restore behaves", `Quick, test_snapshot_restore_behaves);
    ("restore bad image rejected", `Quick, test_restore_bad_image_rejected);
    ("concolic import accept", `Quick, test_import_concolic_accept);
    ("concolic import reject", `Quick, test_import_concolic_reject);
    ("concolic import previous best", `Quick, test_import_concolic_previous_best);
    ("concolic import unknown peer", `Quick, test_import_concolic_unknown_peer);
    ("concolic import records constraints", `Quick, test_import_concolic_records_constraints)
  ]
