(* Tests for the BGP session FSM (RFC 4271 §8). *)
open Dice_bgp

let open_msg =
  { Msg.version = 4; my_as = 64501; hold_time = 90; bgp_id = 1; capabilities = [] }

let has_action actions pred = List.exists pred actions

let step_through state events =
  List.fold_left (fun (st, _) ev -> Fsm.step st ev) (state, []) events

let test_happy_path () =
  let st, actions = Fsm.step Fsm.initial Fsm.Manual_start in
  Alcotest.(check string) "to Connect" "Connect" (Fsm.state_to_string st);
  Alcotest.(check bool) "initiates connect" true
    (has_action actions (( = ) Fsm.Initiate_connect));
  let st, actions = Fsm.step st Fsm.Tcp_connected in
  Alcotest.(check string) "to OpenSent" "OpenSent" (Fsm.state_to_string st);
  Alcotest.(check bool) "sends OPEN" true (has_action actions (( = ) Fsm.Send_open));
  let st, actions = Fsm.step st (Fsm.Recv_open open_msg) in
  Alcotest.(check string) "to OpenConfirm" "OpenConfirm" (Fsm.state_to_string st);
  Alcotest.(check bool) "sends KEEPALIVE" true (has_action actions (( = ) Fsm.Send_keepalive));
  let st, actions = Fsm.step st Fsm.Recv_keepalive in
  Alcotest.(check string) "to Established" "Established" (Fsm.state_to_string st);
  Alcotest.(check bool) "announces session" true
    (has_action actions (( = ) Fsm.Session_established))

let established () =
  fst
    (step_through Fsm.initial
       [ Fsm.Manual_start; Fsm.Tcp_connected; Fsm.Recv_open open_msg; Fsm.Recv_keepalive ])

let test_update_delivery () =
  let u = { Msg.withdrawn = []; attrs = []; nlri = [] } in
  let st, actions = Fsm.step (established ()) (Fsm.Recv_update u) in
  Alcotest.(check string) "stays Established" "Established" (Fsm.state_to_string st);
  Alcotest.(check bool) "delivers" true
    (has_action actions (function Fsm.Deliver_update _ -> true | _ -> false));
  Alcotest.(check bool) "restarts hold timer" true
    (has_action actions (( = ) (Fsm.Start_timer Fsm.Hold)))

let test_keepalive_refreshes_hold () =
  let _, actions = Fsm.step (established ()) Fsm.Recv_keepalive in
  Alcotest.(check bool) "hold restarted" true
    (has_action actions (( = ) (Fsm.Start_timer Fsm.Hold)))

let test_hold_expiry_tears_down () =
  let st, actions = Fsm.step (established ()) (Fsm.Timer_expired Fsm.Hold) in
  Alcotest.(check string) "to Idle" "Idle" (Fsm.state_to_string st);
  Alcotest.(check bool) "hold-expired notification (code 4)" true
    (has_action actions (function
      | Fsm.Send_notification n -> n.Msg.code = 4
      | _ -> false));
  Alcotest.(check bool) "session down" true
    (has_action actions (function Fsm.Session_down _ -> true | _ -> false))

let test_keepalive_timer_sends () =
  let st, actions = Fsm.step (established ()) (Fsm.Timer_expired Fsm.Keepalive_timer) in
  Alcotest.(check string) "stays" "Established" (Fsm.state_to_string st);
  Alcotest.(check bool) "sends keepalive" true (has_action actions (( = ) Fsm.Send_keepalive))

let test_notification_tears_down () =
  let st, actions =
    Fsm.step (established ())
      (Fsm.Recv_notification { Msg.code = 6; subcode = 0; data = Bytes.empty })
  in
  Alcotest.(check string) "to Idle" "Idle" (Fsm.state_to_string st);
  Alcotest.(check bool) "drops connection" true (has_action actions (( = ) Fsm.Drop_connection))

let test_manual_stop_sends_cease () =
  let _, actions = Fsm.step (established ()) Fsm.Manual_stop in
  Alcotest.(check bool) "cease (code 6)" true
    (has_action actions (function
      | Fsm.Send_notification n -> n.Msg.code = 6
      | _ -> false))

let test_connect_retry () =
  let st, _ = Fsm.step Fsm.initial Fsm.Manual_start in
  let st, _ = Fsm.step st Fsm.Tcp_failed in
  Alcotest.(check string) "to Active" "Active" (Fsm.state_to_string st);
  let st, actions = Fsm.step st (Fsm.Timer_expired Fsm.Connect_retry) in
  Alcotest.(check string) "back to Connect" "Connect" (Fsm.state_to_string st);
  Alcotest.(check bool) "retries" true (has_action actions (( = ) Fsm.Initiate_connect))

let test_unexpected_open_in_established () =
  let st, actions = Fsm.step (established ()) (Fsm.Recv_open open_msg) in
  Alcotest.(check string) "to Idle" "Idle" (Fsm.state_to_string st);
  Alcotest.(check bool) "FSM error (code 5)" true
    (has_action actions (function
      | Fsm.Send_notification n -> n.Msg.code = 5
      | _ -> false))

let test_idle_ignores_noise () =
  List.iter
    (fun ev ->
      let st, actions = Fsm.step Fsm.Idle ev in
      Alcotest.(check string) "stays Idle" "Idle" (Fsm.state_to_string st);
      Alcotest.(check int) "no actions" 0 (List.length actions))
    [ Fsm.Tcp_connected; Fsm.Recv_keepalive; Fsm.Manual_stop;
      Fsm.Timer_expired Fsm.Hold ]

let test_transport_failure_in_established () =
  let st, actions = Fsm.step (established ()) Fsm.Tcp_failed in
  Alcotest.(check string) "to Idle" "Idle" (Fsm.state_to_string st);
  Alcotest.(check bool) "session down" true
    (has_action actions (function Fsm.Session_down _ -> true | _ -> false))

let test_open_sent_hold_expiry () =
  let st, _ = step_through Fsm.initial [ Fsm.Manual_start; Fsm.Tcp_connected ] in
  let st', actions = Fsm.step st (Fsm.Timer_expired Fsm.Hold) in
  Alcotest.(check string) "to Idle" "Idle" (Fsm.state_to_string st');
  Alcotest.(check bool) "notifies" true
    (has_action actions (function Fsm.Send_notification _ -> true | _ -> false))

let suite =
  [ ("happy path to Established", `Quick, test_happy_path);
    ("update delivery", `Quick, test_update_delivery);
    ("keepalive refreshes hold", `Quick, test_keepalive_refreshes_hold);
    ("hold expiry tears down", `Quick, test_hold_expiry_tears_down);
    ("keepalive timer sends", `Quick, test_keepalive_timer_sends);
    ("notification tears down", `Quick, test_notification_tears_down);
    ("manual stop sends cease", `Quick, test_manual_stop_sends_cease);
    ("connect retry", `Quick, test_connect_retry);
    ("unexpected OPEN in Established", `Quick, test_unexpected_open_in_established);
    ("idle ignores noise", `Quick, test_idle_ignores_noise);
    ("transport failure in Established", `Quick, test_transport_failure_in_established);
    ("OpenSent hold expiry", `Quick, test_open_sent_hold_expiry)
  ]
