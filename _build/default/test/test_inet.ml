(* Tests for Dice_inet: Ipv4, Prefix, Asn, Community. *)
open Dice_inet

let test_ipv4_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Ipv4.to_string (Ipv4.of_string s)))
    [ "0.0.0.0"; "255.255.255.255"; "10.0.0.1"; "192.168.1.254"; "1.2.3.4" ]

let test_ipv4_octets () =
  Alcotest.(check int) "10.0.0.1" 0x0A000001 (Ipv4.of_octets 10 0 0 1);
  let a, b, c, d = Ipv4.to_octets (Ipv4.of_string "1.2.3.4") in
  Alcotest.(check (list int)) "octets" [ 1; 2; 3; 4 ] [ a; b; c; d ]

let test_ipv4_bad_parse () =
  List.iter
    (fun s ->
      Alcotest.(check (option int)) s None (Ipv4.of_string_opt s))
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.0.0.1"; "a.b.c.d"; "1..2.3"; "-1.0.0.0"; "1.2.3.4 " ]

let test_ipv4_bits () =
  let a = Ipv4.of_string "128.0.0.1" in
  Alcotest.(check bool) "top bit" true (Ipv4.bit a 0);
  Alcotest.(check bool) "second bit" false (Ipv4.bit a 1);
  Alcotest.(check bool) "last bit" true (Ipv4.bit a 31)

let test_ipv4_mask () =
  Alcotest.(check int) "/0" 0 (Ipv4.mask 0);
  Alcotest.(check int) "/32" 0xFFFFFFFF (Ipv4.mask 32);
  Alcotest.(check int) "/8" 0xFF000000 (Ipv4.mask 8);
  Alcotest.(check string) "apply" "10.0.0.0"
    (Ipv4.to_string (Ipv4.apply_mask (Ipv4.of_string "10.1.2.3") 8))

let test_ipv4_succ_wrap () =
  Alcotest.(check int) "wraps" 0 (Ipv4.succ Ipv4.broadcast);
  Alcotest.(check string) "succ" "1.2.3.5" (Ipv4.to_string (Ipv4.succ (Ipv4.of_string "1.2.3.4")))

let test_ipv4_compare () =
  Alcotest.(check bool) "order" true
    (Ipv4.compare (Ipv4.of_string "9.0.0.0") (Ipv4.of_string "10.0.0.0") < 0);
  (* high addresses must not compare negative (unsigned semantics) *)
  Alcotest.(check bool) "unsigned order" true
    (Ipv4.compare (Ipv4.of_string "200.0.0.0") (Ipv4.of_string "100.0.0.0") > 0)

let test_ipv4_int32 () =
  let a = Ipv4.of_string "255.0.0.1" in
  Alcotest.(check int) "roundtrip" a (Ipv4.of_int32 (Ipv4.to_int32 a))

(* ---- Prefix ---- *)

let test_prefix_normalize () =
  let p = Prefix.make (Ipv4.of_string "10.1.2.3") 8 in
  Alcotest.(check string) "normalized" "10.0.0.0/8" (Prefix.to_string p)

let test_prefix_of_string () =
  Alcotest.(check string) "cidr" "192.168.0.0/16"
    (Prefix.to_string (Prefix.of_string "192.168.1.1/16"));
  Alcotest.(check string) "bare address is /32" "1.2.3.4/32"
    (Prefix.to_string (Prefix.of_string "1.2.3.4"))

let test_prefix_bad_parse () =
  List.iter
    (fun s -> Alcotest.(check bool) s true (Prefix.of_string_opt s = None))
    [ "10.0.0.0/33"; "10.0.0.0/-1"; "10.0.0/8"; "10.0.0.0/x"; "/8" ]

let test_prefix_contains () =
  let p = Prefix.of_string "10.0.0.0/8" in
  Alcotest.(check bool) "inside" true (Prefix.contains p (Ipv4.of_string "10.255.0.1"));
  Alcotest.(check bool) "outside" false (Prefix.contains p (Ipv4.of_string "11.0.0.0"));
  Alcotest.(check bool) "default contains all" true
    (Prefix.contains Prefix.default (Ipv4.of_string "200.1.2.3"))

let test_prefix_subsumes () =
  let p8 = Prefix.of_string "10.0.0.0/8" and p16 = Prefix.of_string "10.5.0.0/16" in
  Alcotest.(check bool) "/8 subsumes /16" true (Prefix.subsumes p8 p16);
  Alcotest.(check bool) "/16 not subsumes /8" false (Prefix.subsumes p16 p8);
  Alcotest.(check bool) "self" true (Prefix.subsumes p8 p8);
  Alcotest.(check bool) "disjoint" false
    (Prefix.subsumes p8 (Prefix.of_string "11.0.0.0/16"))

let test_prefix_overlaps () =
  let a = Prefix.of_string "10.0.0.0/8" and b = Prefix.of_string "10.1.0.0/16" in
  Alcotest.(check bool) "nested overlap" true (Prefix.overlaps a b && Prefix.overlaps b a);
  Alcotest.(check bool) "disjoint" false
    (Prefix.overlaps (Prefix.of_string "10.0.0.0/9") (Prefix.of_string "10.128.0.0/9"))

let test_prefix_addresses () =
  let p = Prefix.of_string "10.0.0.0/30" in
  Alcotest.(check string) "first" "10.0.0.0" (Ipv4.to_string (Prefix.first_address p));
  Alcotest.(check string) "last" "10.0.0.3" (Ipv4.to_string (Prefix.last_address p))

let test_prefix_split () =
  match Prefix.split (Prefix.of_string "10.0.0.0/8") with
  | Some (lo, hi) ->
    Alcotest.(check string) "lo" "10.0.0.0/9" (Prefix.to_string lo);
    Alcotest.(check string) "hi" "10.128.0.0/9" (Prefix.to_string hi)
  | None -> Alcotest.fail "split /8 must succeed"

let test_prefix_split_host () =
  Alcotest.(check bool) "/32 unsplittable" true
    (Prefix.split (Prefix.of_string "1.2.3.4/32") = None)

let test_prefix_compare_total () =
  let l =
    List.map Prefix.of_string [ "10.0.0.0/8"; "10.0.0.0/16"; "9.0.0.0/8"; "11.0.0.0/8" ]
  in
  let sorted = List.sort Prefix.compare l in
  Alcotest.(check (list string))
    "sorted order"
    [ "9.0.0.0/8"; "10.0.0.0/8"; "10.0.0.0/16"; "11.0.0.0/8" ]
    (List.map Prefix.to_string sorted)

let test_prefix_equal_hash () =
  let a = Prefix.of_string "10.0.0.0/8" and b = Prefix.make (Ipv4.of_string "10.9.9.9") 8 in
  Alcotest.(check bool) "equal after normalization" true (Prefix.equal a b);
  Alcotest.(check int) "hash agrees" (Prefix.hash a) (Prefix.hash b)

(* ---- Asn.Path ---- *)

let test_path_prepend () =
  let p = Asn.Path.prepend 3 (Asn.Path.prepend 2 (Asn.Path.prepend 1 Asn.Path.empty)) in
  Alcotest.(check (list int)) "order" [ 3; 2; 1 ] (Asn.Path.as_list p)

let test_path_prepend_after_set () =
  let p = Asn.Path.prepend 5 [ Asn.Path.Set [ 1; 2 ] ] in
  match p with
  | [ Asn.Path.Seq [ 5 ]; Asn.Path.Set [ 1; 2 ] ] -> ()
  | _ -> Alcotest.fail "prepend must open a new sequence before a set"

let test_path_length_with_set () =
  let p = [ Asn.Path.Seq [ 1; 2; 3 ]; Asn.Path.Set [ 7; 8; 9 ] ] in
  Alcotest.(check int) "set counts once" 4 (Asn.Path.length p)

let test_path_origin () =
  Alcotest.(check (option int)) "last of seq" (Some 9)
    (Asn.Path.origin_as [ Asn.Path.Seq [ 1; 9 ] ]);
  Alcotest.(check (option int)) "empty" None (Asn.Path.origin_as Asn.Path.empty);
  Alcotest.(check (option int)) "ends in set" None
    (Asn.Path.origin_as [ Asn.Path.Seq [ 1 ]; Asn.Path.Set [ 2; 3 ] ])

let test_path_first () =
  Alcotest.(check (option int)) "first" (Some 1)
    (Asn.Path.first_as [ Asn.Path.Seq [ 1; 9 ] ]);
  Alcotest.(check (option int)) "set first" None
    (Asn.Path.first_as [ Asn.Path.Set [ 1 ] ])

let test_path_contains () =
  let p = [ Asn.Path.Seq [ 1; 2 ]; Asn.Path.Set [ 3 ] ] in
  Alcotest.(check bool) "in seq" true (Asn.Path.contains p 2);
  Alcotest.(check bool) "in set" true (Asn.Path.contains p 3);
  Alcotest.(check bool) "absent" false (Asn.Path.contains p 4)

let test_path_to_string () =
  Alcotest.(check string) "render" "1 2 {3,4}"
    (Asn.Path.to_string [ Asn.Path.Seq [ 1; 2 ]; Asn.Path.Set [ 3; 4 ] ])

(* ---- Community ---- *)

let test_community_parts () =
  let c = Community.make 64500 120 in
  Alcotest.(check int) "asn" 64500 (Community.asn_part c);
  Alcotest.(check int) "value" 120 (Community.value_part c)

let test_community_parse () =
  Alcotest.(check int) "parse" (Community.make 100 200) (Community.of_string "100:200");
  Alcotest.(check int) "no-export" Community.no_export (Community.of_string "no-export");
  Alcotest.(check (option int)) "bad" None (Community.of_string_opt "100");
  Alcotest.(check (option int)) "overflow" None (Community.of_string_opt "70000:1")

let test_community_to_string () =
  Alcotest.(check string) "render" "100:200" (Community.to_string (Community.make 100 200));
  Alcotest.(check string) "well-known" "no-advertise" (Community.to_string Community.no_advertise)

let suite =
  [ ("ipv4 roundtrip", `Quick, test_ipv4_roundtrip);
    ("ipv4 octets", `Quick, test_ipv4_octets);
    ("ipv4 bad parse", `Quick, test_ipv4_bad_parse);
    ("ipv4 bits", `Quick, test_ipv4_bits);
    ("ipv4 mask", `Quick, test_ipv4_mask);
    ("ipv4 succ wraps", `Quick, test_ipv4_succ_wrap);
    ("ipv4 compare", `Quick, test_ipv4_compare);
    ("ipv4 int32", `Quick, test_ipv4_int32);
    ("prefix normalize", `Quick, test_prefix_normalize);
    ("prefix of_string", `Quick, test_prefix_of_string);
    ("prefix bad parse", `Quick, test_prefix_bad_parse);
    ("prefix contains", `Quick, test_prefix_contains);
    ("prefix subsumes", `Quick, test_prefix_subsumes);
    ("prefix overlaps", `Quick, test_prefix_overlaps);
    ("prefix first/last", `Quick, test_prefix_addresses);
    ("prefix split", `Quick, test_prefix_split);
    ("prefix split host", `Quick, test_prefix_split_host);
    ("prefix compare", `Quick, test_prefix_compare_total);
    ("prefix equal/hash", `Quick, test_prefix_equal_hash);
    ("path prepend", `Quick, test_path_prepend);
    ("path prepend after set", `Quick, test_path_prepend_after_set);
    ("path length with set", `Quick, test_path_length_with_set);
    ("path origin", `Quick, test_path_origin);
    ("path first", `Quick, test_path_first);
    ("path contains", `Quick, test_path_contains);
    ("path to_string", `Quick, test_path_to_string);
    ("community parts", `Quick, test_community_parts);
    ("community parse", `Quick, test_community_parse);
    ("community render", `Quick, test_community_to_string)
  ]
