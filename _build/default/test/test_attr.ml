(* Tests for BGP path attribute wire codecs. *)
open Dice_inet
open Dice_bgp
module Wbuf = Dice_wire.Wbuf
module Rbuf = Dice_wire.Rbuf

let roundtrip ?(as4 = true) attrs =
  let w = Wbuf.create () in
  Attr.encode_list ~as4 w attrs;
  match Attr.decode_list ~as4 (Rbuf.of_bytes (Wbuf.contents w)) with
  | Ok decoded -> decoded
  | Error e -> Alcotest.failf "decode failed: %s" (Attr.error_to_string e)

let expect_error ?(as4 = true) bytes expected =
  match Attr.decode_list ~as4 (Rbuf.of_bytes bytes) with
  | Ok _ -> Alcotest.fail "expected a decode error"
  | Error e ->
    Alcotest.(check string) "error kind" (Attr.error_to_string expected)
      (Attr.error_to_string e)

let attr_t = Alcotest.testable (fun ppf a -> Attr.pp ppf a) ( = )

let test_origin_roundtrip () =
  List.iter
    (fun o ->
      Alcotest.(check (list attr_t)) "roundtrip" [ Attr.Origin o ] (roundtrip [ Attr.Origin o ]))
    [ Attr.Igp; Attr.Egp; Attr.Incomplete ]

let test_as_path_roundtrip () =
  let path = [ Asn.Path.Seq [ 64501; 64502 ]; Asn.Path.Set [ 100; 200 ] ] in
  Alcotest.(check (list attr_t)) "as4 roundtrip" [ Attr.As_path path ]
    (roundtrip [ Attr.As_path path ]);
  Alcotest.(check (list attr_t)) "as2 roundtrip" [ Attr.As_path path ]
    (roundtrip ~as4:false [ Attr.As_path path ])

let test_as_path_large_asn_needs_as4 () =
  (* a 32-bit ASN survives only the 4-byte encoding *)
  let path = [ Asn.Path.Seq [ 400_000 ] ] in
  Alcotest.(check (list attr_t)) "as4 keeps it" [ Attr.As_path path ]
    (roundtrip [ Attr.As_path path ]);
  match roundtrip ~as4:false [ Attr.As_path path ] with
  | [ Attr.As_path [ Asn.Path.Seq [ truncated ] ] ] ->
    Alcotest.(check int) "as2 truncates" (400_000 land 0xFFFF) truncated
  | _ -> Alcotest.fail "unexpected shape"

let test_scalar_attrs_roundtrip () =
  let attrs =
    [ Attr.Next_hop (Ipv4.of_string "10.0.0.1");
      Attr.Med 4_000_000_000;
      Attr.Local_pref 120;
      Attr.Atomic_aggregate;
      Attr.Aggregator (64501, Ipv4.of_string "192.0.2.1");
      Attr.Communities [ Community.make 64500 80; Community.no_export ]
    ]
  in
  Alcotest.(check (list attr_t)) "roundtrip" attrs (roundtrip attrs)

let test_type_codes () =
  Alcotest.(check (list int)) "RFC 4271 codes" [ 1; 2; 3; 4; 5; 6; 7; 8 ]
    (List.map Attr.type_code
       [ Attr.Origin Attr.Igp; Attr.As_path []; Attr.Next_hop 1; Attr.Med 0;
         Attr.Local_pref 0; Attr.Atomic_aggregate; Attr.Aggregator (1, 1);
         Attr.Communities [] ])

let test_unknown_optional_passthrough () =
  (* optional transitive unknown attribute: forwarded with Partial set *)
  let w = Wbuf.create () in
  Wbuf.u8 w 0xC0 (* optional transitive *);
  Wbuf.u8 w 99;
  Wbuf.u8 w 2;
  Wbuf.u16 w 0xBEEF;
  match Attr.decode_list ~as4:true (Rbuf.of_bytes (Wbuf.contents w)) with
  | Ok [ Attr.Unknown u ] ->
    Alcotest.(check int) "type" 99 u.Attr.typ;
    Alcotest.(check bool) "partial set" true (u.Attr.flags land 0x20 <> 0)
  | Ok _ -> Alcotest.fail "expected one unknown attribute"
  | Error e -> Alcotest.failf "decode failed: %s" (Attr.error_to_string e)

let test_unknown_wellknown_rejected () =
  (* a non-optional unrecognized attribute is a protocol error *)
  let w = Wbuf.create () in
  Wbuf.u8 w 0x40;
  Wbuf.u8 w 99;
  Wbuf.u8 w 0;
  expect_error (Wbuf.contents w) (Attr.Unrecognized_wellknown 99)

let test_invalid_origin_value () =
  let w = Wbuf.create () in
  Wbuf.u8 w 0x40;
  Wbuf.u8 w 1;
  Wbuf.u8 w 1;
  Wbuf.u8 w 9;
  expect_error (Wbuf.contents w) Attr.Invalid_origin

let test_origin_bad_length () =
  let w = Wbuf.create () in
  Wbuf.u8 w 0x40;
  Wbuf.u8 w 1;
  Wbuf.u8 w 2;
  Wbuf.u16 w 0;
  expect_error (Wbuf.contents w) (Attr.Attribute_length_error 1)

let test_wellknown_with_optional_flag_rejected () =
  (* ORIGIN flagged optional: Attribute Flags Error *)
  let w = Wbuf.create () in
  Wbuf.u8 w 0xC0;
  Wbuf.u8 w 1;
  Wbuf.u8 w 1;
  Wbuf.u8 w 0;
  expect_error (Wbuf.contents w) (Attr.Attribute_flags_error 1)

let test_duplicate_attribute_rejected () =
  let w = Wbuf.create () in
  Attr.encode ~as4:true w (Attr.Origin Attr.Igp);
  Attr.encode ~as4:true w (Attr.Origin Attr.Egp);
  expect_error (Wbuf.contents w) (Attr.Duplicate_attribute 1)

let test_truncated_value () =
  let w = Wbuf.create () in
  Wbuf.u8 w 0x40;
  Wbuf.u8 w 3 (* next hop *);
  Wbuf.u8 w 4;
  Wbuf.u16 w 0 (* only 2 of 4 bytes *);
  expect_error (Wbuf.contents w) Attr.Malformed_attribute_list

let test_invalid_next_hop () =
  let w = Wbuf.create () in
  Wbuf.u8 w 0x40;
  Wbuf.u8 w 3;
  Wbuf.u8 w 4;
  Wbuf.u32 w 0 (* 0.0.0.0 *);
  expect_error (Wbuf.contents w) Attr.Invalid_next_hop

let test_extended_length () =
  (* a communities attribute long enough to need the extended length bit *)
  let cs = List.init 100 (fun i -> Community.make 64500 i) in
  Alcotest.(check (list attr_t)) "roundtrip" [ Attr.Communities cs ]
    (roundtrip [ Attr.Communities cs ])

let test_communities_bad_length () =
  let w = Wbuf.create () in
  Wbuf.u8 w 0xC0;
  Wbuf.u8 w 8;
  Wbuf.u8 w 3 (* not a multiple of 4 *);
  Wbuf.u8 w 0;
  Wbuf.u16 w 0;
  expect_error (Wbuf.contents w) (Attr.Attribute_length_error 8)

let test_malformed_as_path_segment () =
  let w = Wbuf.create () in
  Wbuf.u8 w 0x40;
  Wbuf.u8 w 2;
  Wbuf.u8 w 2;
  Wbuf.u8 w 7 (* bad segment type *);
  Wbuf.u8 w 0;
  expect_error (Wbuf.contents w) Attr.Malformed_as_path

let test_empty_list () =
  Alcotest.(check (list attr_t)) "empty ok" [] (roundtrip [])

let prop_roundtrip =
  let arb =
    QCheck.make
      ~print:(fun attrs -> String.concat "; " (List.map Attr.to_string attrs))
      QCheck.Gen.(
        let asn = int_range 1 100000 in
        let med = map (fun m -> Attr.Med m) (int_range 0 1000) in
        let lp = map (fun m -> Attr.Local_pref m) (int_range 0 1000) in
        let nh = map (fun a -> Attr.Next_hop (a land 0xFFFFFF lor 0x0A000000)) (int_range 1 0xFFFFFF) in
        let origin = map (fun o -> Attr.Origin (match o with 0 -> Attr.Igp | 1 -> Attr.Egp | _ -> Attr.Incomplete)) (int_range 0 2) in
        let path =
          map (fun asns -> Attr.As_path [ Asn.Path.Seq asns ]) (list_size (int_range 1 6) asn)
        in
        let comms =
          map
            (fun vs -> Attr.Communities (List.map (fun v -> Community.make 64500 (v land 0xFFFF)) vs))
            (list_size (int_range 0 5) (int_range 0 0xFFFF))
        in
        (* one of each category, unique type codes *)
        map
          (fun (a, b, c, d, e, f) -> [ a; b; c; d; e; f ])
          (tup6 origin path nh med lp comms))
  in
  QCheck.Test.make ~name:"attribute list roundtrip" ~count:200 arb (fun attrs ->
      roundtrip attrs = attrs)

let suite =
  [ ("origin roundtrip", `Quick, test_origin_roundtrip);
    ("as_path roundtrip", `Quick, test_as_path_roundtrip);
    ("32-bit ASN needs AS4", `Quick, test_as_path_large_asn_needs_as4);
    ("scalar attrs roundtrip", `Quick, test_scalar_attrs_roundtrip);
    ("type codes", `Quick, test_type_codes);
    ("unknown optional passthrough", `Quick, test_unknown_optional_passthrough);
    ("unrecognized well-known rejected", `Quick, test_unknown_wellknown_rejected);
    ("invalid origin value", `Quick, test_invalid_origin_value);
    ("origin bad length", `Quick, test_origin_bad_length);
    ("well-known with optional flag", `Quick, test_wellknown_with_optional_flag_rejected);
    ("duplicate attribute", `Quick, test_duplicate_attribute_rejected);
    ("truncated value", `Quick, test_truncated_value);
    ("invalid next hop", `Quick, test_invalid_next_hop);
    ("extended length", `Quick, test_extended_length);
    ("communities bad length", `Quick, test_communities_bad_length);
    ("malformed AS_PATH segment", `Quick, test_malformed_as_path_segment);
    ("empty list", `Quick, test_empty_list);
    QCheck_alcotest.to_alcotest prop_roundtrip
  ]
