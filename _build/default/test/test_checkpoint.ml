(* Tests for the copy-on-write checkpoint store and fork lifecycle. *)
module Page = Dice_checkpoint.Page
module Store = Dice_checkpoint.Store
module Fork = Dice_checkpoint.Fork

let bytes_of n f = Bytes.init n (fun i -> Char.chr (f i land 0xFF))

(* ---- Page ---- *)

let test_page_split_sizes () =
  let b = bytes_of 10000 Fun.id in
  let pages = Page.split ~page_size:4096 b in
  Alcotest.(check int) "page count" 3 (List.length pages);
  Alcotest.(check (list int)) "sizes" [ 4096; 4096; 1808 ]
    (List.map (fun ((id : Page.id), _) -> id.Page.len) pages)

let test_page_split_empty () =
  Alcotest.(check int) "no pages" 0 (List.length (Page.split ~page_size:4096 Bytes.empty))

let test_page_count () =
  Alcotest.(check int) "exact" 2 (Page.count ~page_size:100 200);
  Alcotest.(check int) "round up" 3 (Page.count ~page_size:100 201);
  Alcotest.(check int) "zero" 0 (Page.count ~page_size:100 0)

let test_page_id_content_based () =
  let a = Bytes.of_string "hello world" in
  let b = Bytes.of_string "hello world" in
  Alcotest.(check bool) "same content same id" true
    (Page.equal_id (Page.id_of a 0 11) (Page.id_of b 0 11));
  Bytes.set b 0 'H';
  Alcotest.(check bool) "differs" false (Page.equal_id (Page.id_of a 0 11) (Page.id_of b 0 11))

(* ---- Store ---- *)

let test_capture_restore_identity () =
  let st = Store.create ~page_size:64 () in
  let img = bytes_of 1000 (fun i -> i * 7) in
  let snap = Store.capture st img in
  Alcotest.(check bytes) "identity" img (Store.restore snap)

let test_dedup () =
  let st = Store.create ~page_size:64 () in
  let img = Bytes.make 640 'x' in
  let snap = Store.capture st img in
  (* ten identical pages stored once *)
  Alcotest.(check int) "snapshot pages" 10 (Store.snapshot_pages snap);
  Alcotest.(check int) "stored once" 1 (Store.stored_pages st)

let test_sharing_between_snapshots () =
  let st = Store.create ~page_size:64 () in
  let a = bytes_of 640 Fun.id in
  let b = Bytes.copy a in
  Bytes.set b 0 '\xFF';  (* dirty the first page only *)
  let sa = Store.capture st a and sb = Store.capture st b in
  Alcotest.(check int) "9 shared" 9 (Store.shared_pages sa sb);
  Alcotest.(check int) "1 unique" 1 (Store.unique_pages sb ~relative_to:sa);
  Alcotest.(check (float 1e-9)) "fraction" 0.1 (Store.unique_fraction sb ~relative_to:sa)

let test_refcount_eviction () =
  let st = Store.create ~page_size:64 () in
  let a = Store.capture st (Bytes.make 64 'a') in
  let b = Store.capture st (Bytes.make 64 'b') in
  Alcotest.(check int) "two pages" 2 (Store.stored_pages st);
  Store.release a;
  Alcotest.(check int) "one evicted" 1 (Store.stored_pages st);
  Store.release b;
  Alcotest.(check int) "empty" 0 (Store.stored_pages st)

let test_clone_shares () =
  let st = Store.create ~page_size:64 () in
  let a = Store.capture st (bytes_of 256 Fun.id) in
  let c = Store.clone a in
  Alcotest.(check int) "still 4 distinct pages" 4 (Store.stored_pages st);
  Store.release a;
  (* the clone keeps the pages alive *)
  Alcotest.(check int) "pages survive" 4 (Store.stored_pages st);
  Alcotest.(check bytes) "clone restores" (bytes_of 256 Fun.id) (Store.restore c);
  Store.release c;
  Alcotest.(check int) "all gone" 0 (Store.stored_pages st)

let test_double_release_rejected () =
  let st = Store.create ~page_size:64 () in
  let a = Store.capture st (Bytes.make 64 'a') in
  Store.release a;
  Alcotest.check_raises "double release" (Invalid_argument "Store.release: already released")
    (fun () -> Store.release a)

let test_use_after_release_rejected () =
  let st = Store.create ~page_size:64 () in
  let a = Store.capture st (Bytes.make 64 'a') in
  Store.release a;
  Alcotest.check_raises "restore after release"
    (Invalid_argument "Store.restore: snapshot released") (fun () -> ignore (Store.restore a))

let test_empty_image () =
  let st = Store.create ~page_size:64 () in
  let s = Store.capture st Bytes.empty in
  Alcotest.(check bytes) "restores empty" Bytes.empty (Store.restore s);
  Alcotest.(check (float 0.0)) "fraction 0" 0.0 (Store.unique_fraction s ~relative_to:s)

let test_live_snapshots () =
  let st = Store.create () in
  Alcotest.(check int) "none" 0 (Store.live_snapshots st);
  let a = Store.capture st (Bytes.make 10 'a') in
  let b = Store.clone a in
  Alcotest.(check int) "two" 2 (Store.live_snapshots st);
  Store.release a;
  Store.release b;
  Alcotest.(check int) "zero" 0 (Store.live_snapshots st)

(* ---- Fork ---- *)

let test_fork_lifecycle () =
  let mgr = Fork.create ~page_size:64 () in
  let live = bytes_of 1024 Fun.id in
  let cp = Fork.checkpoint mgr ~live_image:live in
  Alcotest.(check bytes) "checkpoint image" live (Fork.checkpoint_image cp);
  let clone = Fork.spawn cp in
  Alcotest.(check int) "one clone" 1 (Fork.live_clones mgr);
  Alcotest.(check bytes) "clone sees the checkpoint" live (Fork.image clone);
  (* the clone mutates one page *)
  let final = Bytes.copy live in
  Bytes.set final 0 '\xEE';
  let stats = Fork.finish clone ~final_image:final in
  Alcotest.(check int) "pages" 16 stats.Fork.pages;
  Alcotest.(check int) "one unique" 1 stats.Fork.unique;
  Alcotest.(check int) "no clones left" 0 (Fork.live_clones mgr)

let test_fork_unchanged_clone () =
  let mgr = Fork.create ~page_size:64 () in
  let live = bytes_of 640 Fun.id in
  let cp = Fork.checkpoint mgr ~live_image:live in
  let clone = Fork.spawn cp in
  let stats = Fork.finish clone ~final_image:live in
  Alcotest.(check int) "zero unique" 0 stats.Fork.unique;
  Alcotest.(check (float 0.0)) "zero extra" 0.0 stats.Fork.extra_fraction

let test_fork_grown_clone () =
  let mgr = Fork.create ~page_size:64 () in
  let live = bytes_of 640 Fun.id in
  let cp = Fork.checkpoint mgr ~live_image:live in
  let clone = Fork.spawn cp in
  (* the clone's image grows (exploration metadata): extra pages counted
     against the checkpoint's page count *)
  let final = Bytes.cat live (Bytes.make 320 'm') in
  let stats = Fork.finish clone ~final_image:final in
  Alcotest.(check int) "five extra pages" 5 stats.Fork.unique;
  Alcotest.(check (float 1e-9)) "50% extra" 0.5 stats.Fork.extra_fraction

let test_fork_double_finish_rejected () =
  let mgr = Fork.create ~page_size:64 () in
  let cp = Fork.checkpoint mgr ~live_image:(Bytes.make 64 'a') in
  let clone = Fork.spawn cp in
  ignore (Fork.finish clone ~final_image:(Bytes.make 64 'a'));
  Alcotest.check_raises "double finish"
    (Invalid_argument "Fork.finish: clone already finished") (fun () ->
      ignore (Fork.finish clone ~final_image:(Bytes.make 64 'a')))

let test_checkpoint_stats_divergence () =
  let mgr = Fork.create ~page_size:64 () in
  let live = bytes_of 640 Fun.id in
  let cp = Fork.checkpoint mgr ~live_image:live in
  (* the live image moves on: 2 of 10 pages change *)
  let moved = Bytes.copy live in
  Bytes.set moved 0 '\xAA';
  Bytes.set moved 100 '\xBB';
  let unique, fraction = Fork.checkpoint_stats cp ~live_image:moved in
  Alcotest.(check int) "unique pages" 2 unique;
  Alcotest.(check (float 1e-9)) "fraction" 0.2 fraction

let prop_capture_restore =
  QCheck.Test.make ~name:"capture/restore identity" ~count:100
    QCheck.(string_of_size (Gen.int_range 0 2000))
    (fun s ->
      let st = Store.create ~page_size:128 () in
      let img = Bytes.of_string s in
      let snap = Store.capture st img in
      let ok = Bytes.equal img (Store.restore snap) in
      Store.release snap;
      ok && Store.stored_pages st = 0)

let suite =
  [ ("page split sizes", `Quick, test_page_split_sizes);
    ("page split empty", `Quick, test_page_split_empty);
    ("page count", `Quick, test_page_count);
    ("page id content-based", `Quick, test_page_id_content_based);
    ("capture/restore identity", `Quick, test_capture_restore_identity);
    ("dedup", `Quick, test_dedup);
    ("sharing between snapshots", `Quick, test_sharing_between_snapshots);
    ("refcount eviction", `Quick, test_refcount_eviction);
    ("clone shares pages", `Quick, test_clone_shares);
    ("double release rejected", `Quick, test_double_release_rejected);
    ("use after release rejected", `Quick, test_use_after_release_rejected);
    ("empty image", `Quick, test_empty_image);
    ("live snapshots", `Quick, test_live_snapshots);
    ("fork lifecycle", `Quick, test_fork_lifecycle);
    ("fork unchanged clone", `Quick, test_fork_unchanged_clone);
    ("fork grown clone", `Quick, test_fork_grown_clone);
    ("fork double finish rejected", `Quick, test_fork_double_finish_rejected);
    ("checkpoint stats divergence", `Quick, test_checkpoint_stats_divergence);
    QCheck_alcotest.to_alcotest prop_capture_restore
  ]
