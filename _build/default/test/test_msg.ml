(* Tests for BGP message encoding/decoding (RFC 4271 §4, §6). *)
open Dice_inet
open Dice_bgp

let msg_t = Alcotest.testable (fun ppf m -> Msg.pp ppf m) ( = )

let roundtrip ?as4 msg =
  match Msg.decode ?as4 (Msg.encode ?as4 msg) with
  | Ok m -> m
  | Error e -> Alcotest.failf "decode failed: %s" (Msg.error_to_string e)

let attrs_for nlri =
  if nlri = [] then []
  else
    [ Attr.Origin Attr.Igp;
      Attr.As_path [ Asn.Path.Seq [ 64501 ] ];
      Attr.Next_hop (Ipv4.of_string "10.0.0.1") ]

let update ?(withdrawn = []) nlri =
  Msg.Update { withdrawn; attrs = attrs_for nlri; nlri }

let expect_error bytes pred name =
  match Msg.decode bytes with
  | Ok m -> Alcotest.failf "expected %s, decoded %s" name (Msg.to_string m)
  | Error e ->
    if not (pred e) then Alcotest.failf "expected %s, got %s" name (Msg.error_to_string e)

let test_keepalive () =
  Alcotest.(check msg_t) "roundtrip" Msg.Keepalive (roundtrip Msg.Keepalive);
  Alcotest.(check int) "19 bytes" 19 (Bytes.length Msg.keepalive_bytes)

let test_open_roundtrip () =
  let o =
    Msg.Open
      { Msg.version = 4;
        my_as = 64501;
        hold_time = 90;
        bgp_id = Ipv4.of_string "10.0.0.1";
        capabilities = [ Msg.Cap_as4 64501; Msg.Cap_mp (1, 1) ];
      }
  in
  Alcotest.(check msg_t) "roundtrip" o (roundtrip o)

let test_open_no_caps () =
  let o =
    Msg.Open
      { Msg.version = 4; my_as = 1; hold_time = 0; bgp_id = 1; capabilities = [] }
  in
  Alcotest.(check msg_t) "roundtrip" o (roundtrip o)

let test_open_unknown_capability () =
  let o =
    Msg.Open
      { Msg.version = 4;
        my_as = 1;
        hold_time = 90;
        bgp_id = 1;
        capabilities = [ Msg.Cap_other (77, Bytes.of_string "xy") ];
      }
  in
  Alcotest.(check msg_t) "kept verbatim" o (roundtrip o)

let test_update_roundtrip () =
  let u =
    update
      ~withdrawn:[ Prefix.of_string "10.1.0.0/16"; Prefix.of_string "10.2.3.0/24" ]
      [ Prefix.of_string "192.0.2.0/24"; Prefix.of_string "198.51.100.0/22" ]
  in
  Alcotest.(check msg_t) "roundtrip" u (roundtrip u)

let test_update_withdraw_only () =
  let u = Msg.withdraw_of [ Prefix.of_string "10.0.0.0/8" ] in
  Alcotest.(check msg_t) "roundtrip" u (roundtrip u)

let test_update_prefix_edges () =
  (* /0 and /32 prefix encodings *)
  let u = update [ Prefix.default; Prefix.of_string "1.2.3.4/32"; Prefix.of_string "128.0.0.0/1" ] in
  Alcotest.(check msg_t) "roundtrip" u (roundtrip u)

let test_notification_roundtrip () =
  let n = Msg.Notification { Msg.code = 6; subcode = 2; data = Bytes.of_string "bye" } in
  Alcotest.(check msg_t) "roundtrip" n (roundtrip n)

let test_update_of_route () =
  match Msg.update_of_route ~prefix:(Prefix.of_string "10.0.0.0/8") (attrs_for [ Prefix.default ]) with
  | Msg.Update u ->
    Alcotest.(check int) "one nlri" 1 (List.length u.Msg.nlri);
    Alcotest.(check int) "no withdrawn" 0 (List.length u.Msg.withdrawn)
  | _ -> Alcotest.fail "expected an update"

(* ---- header errors ---- *)

let corrupt f msg =
  let b = Msg.encode msg in
  f b;
  b

let test_bad_marker () =
  let b = corrupt (fun b -> Bytes.set b 3 '\x00') Msg.Keepalive in
  expect_error b
    (function Msg.Header_error { subcode = 1; _ } -> true | _ -> false)
    "connection-not-synchronized"

let test_bad_length_field () =
  let b = corrupt (fun b -> Bytes.set b 17 '\xFF') Msg.Keepalive in
  expect_error b
    (function Msg.Header_error { subcode = 2; _ } -> true | _ -> false)
    "bad-message-length"

let test_bad_type () =
  let b = corrupt (fun b -> Bytes.set b 18 '\x09') Msg.Keepalive in
  expect_error b
    (function Msg.Header_error { subcode = 3; _ } -> true | _ -> false)
    "bad-message-type"

let test_short_message () =
  expect_error (Bytes.make 10 '\xFF')
    (function Msg.Header_error _ -> true | _ -> false)
    "short message"

let test_keepalive_with_body () =
  let b = Msg.encode Msg.Keepalive in
  let b' = Bytes.cat b (Bytes.make 1 '\x00') in
  (* fix the length field to cover the extra byte *)
  Bytes.set b' 16 '\x00';
  Bytes.set b' 17 (Char.chr 20);
  expect_error b'
    (function Msg.Header_error { subcode = 2; _ } -> true | _ -> false)
    "keepalive with body"

(* ---- update errors ---- *)

let test_update_missing_mandatory () =
  (* NLRI without ORIGIN: Missing Well-known Attribute *)
  let u =
    Msg.Update
      {
        withdrawn = [];
        attrs =
          [ Attr.As_path [ Asn.Path.Seq [ 1 ] ]; Attr.Next_hop (Ipv4.of_string "10.0.0.1") ];
        nlri = [ Prefix.of_string "10.0.0.0/8" ];
      }
  in
  expect_error (Msg.encode u)
    (function Msg.Update_error (Attr.Missing_wellknown 1) -> true | _ -> false)
    "missing ORIGIN"

let test_update_no_nlri_needs_no_attrs () =
  (* an update with neither nlri nor attrs (pure withdraw) is legal *)
  let u = Msg.withdraw_of [ Prefix.of_string "10.0.0.0/8" ] in
  Alcotest.(check msg_t) "ok" u (roundtrip u)

let test_update_bad_nlri_length () =
  let u = update [ Prefix.of_string "10.0.0.0/8" ] in
  let b = Msg.encode u in
  (* the NLRI length byte is the second-to-last byte (len 8, 1 addr byte);
     overwrite with 33 *)
  Bytes.set b (Bytes.length b - 2) (Char.chr 33);
  expect_error b
    (function Msg.Update_malformed _ -> true | _ -> false)
    "prefix length 33"

let test_update_withdrawn_overrun () =
  let u = update [] in
  let b = Msg.encode u in
  (* body starts at 19: withdrawn length field claims more than available *)
  Bytes.set b 19 '\xFF';
  Bytes.set b 20 '\xFF';
  expect_error b
    (function Msg.Update_malformed _ -> true | _ -> false)
    "withdrawn overrun"

let test_error_notifications () =
  let check_n err code subcode =
    let n = Msg.error_notification err in
    Alcotest.(check (pair int int)) "code/subcode" (code, subcode) (n.Msg.code, n.Msg.subcode)
  in
  check_n (Msg.Header_error { subcode = 1; reason = "" }) 1 1;
  check_n (Msg.Open_error { subcode = 2; reason = "" }) 2 2;
  check_n (Msg.Update_error Attr.Invalid_origin) 3 6;
  check_n (Msg.Update_malformed "") 3 1

let test_open_version_rejected () =
  let o =
    Msg.Open { Msg.version = 3; my_as = 1; hold_time = 90; bgp_id = 1; capabilities = [] }
  in
  expect_error (Msg.encode o)
    (function Msg.Open_error { subcode = 1; _ } -> true | _ -> false)
    "unsupported version"

let test_open_hold_time_rejected () =
  let o =
    Msg.Open { Msg.version = 4; my_as = 1; hold_time = 2; bgp_id = 1; capabilities = [] }
  in
  expect_error (Msg.encode o)
    (function Msg.Open_error { subcode = 6; _ } -> true | _ -> false)
    "hold time 2"

let test_decode_exn () =
  Alcotest.(check msg_t) "ok" Msg.Keepalive (Msg.decode_exn (Msg.encode Msg.Keepalive));
  let b = corrupt (fun b -> Bytes.set b 0 '\x00') Msg.Keepalive in
  match Msg.decode_exn b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let prop_update_roundtrip =
  let arb =
    QCheck.make
      ~print:(fun pfxs -> String.concat " " (List.map Prefix.to_string pfxs))
      QCheck.Gen.(
        list_size (int_range 1 20)
          (map
             (fun (a, l) -> Prefix.make (a land 0xFFFFFFFF) l)
             (pair (int_range 0 0xFFFFFF) (int_range 0 32))))
  in
  QCheck.Test.make ~name:"update roundtrip over random NLRI" ~count:200 arb (fun pfxs ->
      let u = update pfxs in
      roundtrip u = u)

let suite =
  [ ("keepalive", `Quick, test_keepalive);
    ("open roundtrip", `Quick, test_open_roundtrip);
    ("open without capabilities", `Quick, test_open_no_caps);
    ("open unknown capability", `Quick, test_open_unknown_capability);
    ("update roundtrip", `Quick, test_update_roundtrip);
    ("withdraw-only update", `Quick, test_update_withdraw_only);
    ("prefix encoding edges", `Quick, test_update_prefix_edges);
    ("notification roundtrip", `Quick, test_notification_roundtrip);
    ("update_of_route", `Quick, test_update_of_route);
    ("bad marker", `Quick, test_bad_marker);
    ("bad length field", `Quick, test_bad_length_field);
    ("bad type", `Quick, test_bad_type);
    ("short message", `Quick, test_short_message);
    ("keepalive with body", `Quick, test_keepalive_with_body);
    ("update missing mandatory attr", `Quick, test_update_missing_mandatory);
    ("pure withdraw legal", `Quick, test_update_no_nlri_needs_no_attrs);
    ("bad NLRI length", `Quick, test_update_bad_nlri_length);
    ("withdrawn overrun", `Quick, test_update_withdrawn_overrun);
    ("error notifications", `Quick, test_error_notifications);
    ("open bad version", `Quick, test_open_version_rejected);
    ("open bad hold time", `Quick, test_open_hold_time_rejected);
    ("decode_exn", `Quick, test_decode_exn);
    QCheck_alcotest.to_alcotest prop_update_roundtrip
  ]
