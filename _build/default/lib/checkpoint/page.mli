(** Fixed-size memory pages.

    The checkpoint store models process address space the way [fork()]'s
    copy-on-write does: state is carved into pages, identical pages are
    shared, and a clone only owns the pages it has dirtied. Page identity is
    content-based (a 64-bit hash plus length), which both deduplicates and
    lets us count "unique pages" exactly as the paper's memory-overhead
    experiment does. *)

val default_size : int
(** 4096 bytes, like the evaluation machine's MMU. *)

type id = private { hash : int64; len : int }
(** Content identity of one page. *)

val id_of : bytes -> int -> int -> id
(** [id_of buf off len] identifies the page [buf.(off .. off+len-1)]. *)

val split : page_size:int -> bytes -> (id * bytes) list
(** Carve a byte sequence into pages of [page_size] (last page may be
    short) and identify each. *)

val count : page_size:int -> int -> int
(** Number of pages needed for a state of the given byte size. *)

val equal_id : id -> id -> bool
val pp_id : Format.formatter -> id -> unit
