lib/checkpoint/store.ml: Array Bytes Hashtbl List Page
