lib/checkpoint/page.ml: Bytes Dice_util Format Int64 List
