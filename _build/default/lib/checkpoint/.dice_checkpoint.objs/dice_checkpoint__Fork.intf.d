lib/checkpoint/fork.mli: Store
