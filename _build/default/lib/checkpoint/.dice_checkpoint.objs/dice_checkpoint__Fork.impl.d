lib/checkpoint/fork.ml: Store
