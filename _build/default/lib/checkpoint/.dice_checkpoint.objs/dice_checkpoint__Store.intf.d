lib/checkpoint/store.mli:
