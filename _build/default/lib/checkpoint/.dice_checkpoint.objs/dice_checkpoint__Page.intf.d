lib/checkpoint/page.mli: Format
