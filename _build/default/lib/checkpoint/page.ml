let default_size = 4096

type id = { hash : int64; len : int }

let id_of buf off len = { hash = Dice_util.Hashutil.fnv1a_bytes buf off len; len }

let split ~page_size b =
  assert (page_size > 0);
  let total = Bytes.length b in
  let rec go off acc =
    if off >= total then List.rev acc
    else begin
      let len = min page_size (total - off) in
      let page = Bytes.sub b off len in
      go (off + len) ((id_of b off len, page) :: acc)
    end
  in
  if total = 0 then [] else go 0 []

let count ~page_size size =
  assert (page_size > 0);
  (size + page_size - 1) / page_size

let equal_id a b = Int64.equal a.hash b.hash && a.len = b.len

let pp_id ppf t = Format.fprintf ppf "%Lx:%d" t.hash t.len
