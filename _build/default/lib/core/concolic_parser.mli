(** A byte-level concolically-instrumented BGP message validator.

    This is the code path the whole-message symbolization mode exercises:
    every structural check of the wire parser (marker bytes, length field,
    message type, attribute flag/length consistency, NLRI bounds) is a
    recorded branch over symbolic message bytes. It exists to reproduce
    the paper's negative result — marking the entire UPDATE symbolic makes
    the engine "produce a large variety of invalid messages that simply
    exercise the message parsing code" (§3.2) — measurably: almost every
    negation lands in a parser branch and almost no generated input
    survives to route processing. *)

open Dice_concolic

type depth =
  | Bad_header  (** marker / length / type rejected *)
  | Bad_update_skeleton  (** withdrawn/attr region bounds rejected *)
  | Bad_attribute  (** attribute flags/length rejected *)
  | Bad_nlri  (** prefix encoding rejected *)
  | Valid_update  (** all structural checks passed *)
  | Valid_other  (** structurally valid non-UPDATE message *)

val depth_to_string : depth -> string

val validate : Engine.ctx -> Cval.t array -> depth
(** Walk the (symbolic) message bytes, recording a path constraint at
    every structural check, mirroring {!Dice_bgp.Msg.decode}'s acceptance
    conditions. *)
