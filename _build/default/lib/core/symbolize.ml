open Dice_inet
open Dice_bgp
open Dice_concolic

type mode =
  | Selective
  | Whole_message

let mode_to_string = function
  | Selective -> "selective"
  | Whole_message -> "whole-message"

let croute ctx ~tag ~prefix ~route =
  let base = Croute.of_route prefix route in
  let input name width default = Engine.input ctx ~name:(tag ^ "." ^ name) ~width ~default in
  let addr = input "addr" 32 (Int64.of_int (Prefix.network prefix)) in
  let len = input "len" 8 (Int64.of_int (Prefix.len prefix)) in
  (* well-formedness the wire format guarantees: these are seed
     constraints, not negatable branches *)
  (match Cval.sym len with
  | Some e ->
    Engine.constrain ctx (Sym.Binop (Sym.Ule, e, Sym.const ~width:8 32L)) ~nonzero:true
  | None -> ());
  let origin = input "origin" 8 (Int64.of_int (Attr.origin_code route.Route.origin)) in
  (match Cval.sym origin with
  | Some e ->
    Engine.constrain ctx (Sym.Binop (Sym.Ule, e, Sym.const ~width:8 2L)) ~nonzero:true
  | None -> ());
  let origin_as =
    input "origin_as" 32
      (Int64.of_int (Option.value (Route.origin_as route) ~default:0))
  in
  let base = { base with Croute.net_addr = addr; net_len = len; origin; origin_as } in
  if base.Croute.has_med then
    let med =
      input "med" 32 (Int64.of_int (Option.value route.Route.med ~default:0))
    in
    { base with Croute.med = med }
  else base

let message_bytes ctx ~tag bytes =
  Array.init (Bytes.length bytes) (fun i ->
      Engine.input ctx
        ~name:(Printf.sprintf "%s.b%d" tag i)
        ~width:8
        ~default:(Int64.of_int (Char.code (Bytes.get bytes i))))

let concretize_bytes cvals =
  Bytes.init (Array.length cvals) (fun i -> Char.chr (Cval.to_int cvals.(i) land 0xFF))
