(** Operator-facing report rendering.

    The paper's value proposition for the network operator is a concrete
    artifact: "DiCE clearly states which prefix ranges can be leaked"
    (§4.2). This module turns exploration results into that artifact —
    human-readable text or machine-readable JSON for pipelines (the CLI's
    [--json] flag). *)

val fault_json : Checker.fault -> Dice_util.Json.t

val seed_report_json : Orchestrator.seed_report -> Dice_util.Json.t
(** Exploration statistics per seed: executions, distinct paths,
    coverage, accept/reject counts, solver counters, per-seed faults. *)

val report_json : Orchestrator.report -> Dice_util.Json.t
(** The whole episode: seeds, deduplicated faults, leakable ranges (from
    {!Hijack.leakable_summary}), checkpoint metrics, timing. *)

val comparison_json : Validate.comparison -> Dice_util.Json.t
(** A config-change validation result, verdict included. *)

val to_text : Orchestrator.report -> string
(** The same content as {!Orchestrator.pp_report}, plus the leakable-range
    summary — the paragraph an operator reads. *)

val summary_line : Orchestrator.report -> string
(** One line for logs: seeds, executions, critical/warning counts, wall
    time. *)
