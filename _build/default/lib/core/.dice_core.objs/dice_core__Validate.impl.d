lib/core/validate.ml: Checker Config_types Dice_bgp Dice_inet Format List Orchestrator Router
