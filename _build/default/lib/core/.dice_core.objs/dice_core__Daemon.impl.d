lib/core/daemon.ml: Checker Dice_bgp Dice_inet Dice_sim Hashtbl Ipv4 List Msg Orchestrator Router_node
