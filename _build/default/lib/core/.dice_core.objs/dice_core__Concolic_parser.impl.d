lib/core/concolic_parser.ml: Array Cval Dice_concolic Engine Int64
