lib/core/daemon.mli: Checker Dice_bgp Dice_inet Ipv4 Orchestrator Router_node
