lib/core/orchestrator.mli: Checker Dice_bgp Dice_checkpoint Dice_concolic Dice_inet Explorer Format Ipv4 Msg Prefix Route Router Symbolize
