lib/core/symbolize.ml: Array Attr Bytes Char Croute Cval Dice_bgp Dice_concolic Dice_inet Engine Int64 Option Prefix Printf Route Sym
