lib/core/hijack.mli: Checker Dice_inet
