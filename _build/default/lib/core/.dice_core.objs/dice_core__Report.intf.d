lib/core/report.mli: Checker Dice_util Orchestrator Validate
