lib/core/checks.mli: Checker Dice_inet Prefix
