lib/core/concolic_parser.mli: Cval Dice_concolic Engine
