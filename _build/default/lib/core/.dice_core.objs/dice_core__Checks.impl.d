lib/core/checks.ml: Asn Checker Dice_bgp Dice_inet Hijack Ipv4 List Prefix Printf Route Router
