lib/core/report.ml: Buffer Checker Dice_concolic Dice_inet Dice_util Format Hijack Ipv4 List Orchestrator Prefix Printf Validate
