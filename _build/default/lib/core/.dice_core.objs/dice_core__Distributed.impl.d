lib/core/distributed.ml: Checker Config_types Dice_bgp Dice_inet Ipv4 List Msg Prefix Printf Rib Route Router
