lib/core/hijack.ml: Asn Checker Dice_bgp Dice_inet Hashtbl Ipv4 List Option Prefix Rib Route Router
