lib/core/symbolize.mli: Croute Cval Dice_bgp Dice_concolic Dice_inet Engine Prefix Route
