lib/core/checker.ml: Dice_bgp Dice_inet Format Ipv4 Prefix Printf Rib Router
