lib/core/checker.mli: Dice_bgp Dice_inet Format Ipv4 Prefix Rib Router
