lib/core/validate.mli: Checker Config_types Dice_bgp Format Orchestrator Router
