lib/core/distributed.mli: Checker Dice_bgp Dice_inet Ipv4 Msg Router
