(** Cross-network exploration (the paper's §2.4 extension).

    Local exploration covers a single node's actions; their "far reaching
    consequences ... need to be observed from a system-wide perspective"
    (§2.1). The paper envisions letting exploration messages flow to other
    nodes "in a way that doesn't affect the live system": remote nodes
    checkpoint their state and process these messages in isolation over
    their checkpointed state, while confidentiality demands that "nodes
    only communicate state information through a narrow interface yet
    capable to allow us to detect faults" (§2.4).

    This module implements that design:

    - a {!agent} represents a cooperating remote node (a different
      administrative domain). It owns its live router and never exposes
      state or configuration;
    - {!probe} lets the exploring node submit one exploration message.
      The agent checkpoints its own live router, processes the message on
      an isolated clone, and answers with a {!verdict} — three booleans
      and a count. No RIB contents, no filters, no origin data cross the
      boundary;
    - {!checker} packages remote probing as a fault checker: every
      message an exploration run would send to a neighbor with an agent
      is forwarded (from the interception sandbox, never the live
      network), and remote origin conflicts become system-wide fault
      reports. *)

open Dice_inet
open Dice_bgp

type agent

val agent : name:string -> addr:Ipv4.t -> explorer_addr:Ipv4.t -> Router.t -> agent
(** [agent ~name ~addr ~explorer_addr router]: a remote node that the
    exploring node reaches at [addr], running [router] as its live
    process, and that knows the exploring node as its neighbor
    [explorer_addr]. The agent checkpoints [router] lazily and
    re-checkpoints when the live router has processed new updates
    since. *)

val agent_name : agent -> string
val agent_addr : agent -> Ipv4.t

type verdict = {
  accepted : bool;  (** the remote import policy accepted the route *)
  installed : bool;  (** it became the remote node's best route *)
  origin_conflict : bool;
      (** it overrides the origin AS of something the remote node already
          routes — detected {e at} the remote node, against state the
          local node cannot see *)
  covers_foreign : int;
      (** how many remote routes with other origins the announcement
          {e covers} (claims a super-block of) — the coverage-leak class:
          traffic for the uncovered gaps would divert to the announcer *)
  would_propagate : int;
      (** how many further sessions the remote node would re-advertise
          on — the blast radius *)
}

val probe : agent -> from:Ipv4.t -> Msg.t -> verdict list
(** Submit one exploration message as if it arrived on the session with
    [from] (the exploring node's address on that peering). One verdict
    per announced prefix; empty for non-UPDATE messages or pure
    withdrawals. The agent's live router is never mutated. *)

val probes_performed : agent -> int
val checkpoints_taken : agent -> int

val checker : agents:agent list -> Checker.t
(** A {!Checker.t} that extends every exploration outcome across the
    network: each [To_peer] message the outcome would send to an agent's
    address is probed remotely. Findings:
    - [remote-origin-conflict] (critical): the explored announcement
      would override origins at the remote node — the local node could
      not have detected this, the conflicting route exists only in the
      remote RIB;
    - [remote-coverage-leak] (critical): the explored announcement claims
      a super-block of space the remote node routes to other origins;
    - [remote-propagation] (warning): the remote node would accept and
      re-advertise the exploratory route further ([would_propagate]
      sessions) — the leak crosses a second domain boundary. *)
