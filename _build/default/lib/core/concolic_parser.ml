open Dice_concolic

type depth =
  | Bad_header
  | Bad_update_skeleton
  | Bad_attribute
  | Bad_nlri
  | Valid_update
  | Valid_other

let depth_to_string = function
  | Bad_header -> "bad-header"
  | Bad_update_skeleton -> "bad-update-skeleton"
  | Bad_attribute -> "bad-attribute"
  | Bad_nlri -> "bad-nlri"
  | Valid_update -> "valid-update"
  | Valid_other -> "valid-other"

let c8 v = Cval.concrete ~width:8 (Int64.of_int v)
let c16 v = Cval.concrete ~width:16 (Int64.of_int v)

exception Stop of depth

let validate ctx bytes =
  let n = Array.length bytes in
  let b i = bytes.(i) in
  let u16 i =
    Cval.logor (Cval.shift_left (Cval.zext ~width:16 (b i)) 8) (Cval.zext ~width:16 (b (i + 1)))
  in
  let branch name cond = Engine.branchf ctx ("parser:" ^ name) cond in
  let fail d = raise (Stop d) in
  try
    (* header *)
    if n < 19 then fail Bad_header;
    for i = 0 to 15 do
      if not (branch "marker" (Cval.eq (b i) (c8 0xFF))) then fail Bad_header
    done;
    if not (branch "length-field" (Cval.eq (u16 16) (c16 n))) then fail Bad_header;
    let typ = b 18 in
    if branch "type-update" (Cval.eq typ (c8 2)) then begin
      (* UPDATE body *)
      let body_start = 19 in
      let body_len = n - 19 in
      if body_len < 4 then fail Bad_update_skeleton;
      let wd_len_c = u16 body_start in
      let wd_len = Cval.to_int wd_len_c in
      if
        not
          (branch "withdrawn-fits"
             (Cval.ule wd_len_c (c16 (max 0 (body_len - 4)))))
      then fail Bad_update_skeleton;
      (* withdrawn prefixes *)
      let pos = ref (body_start + 2) in
      let wd_end = body_start + 2 + wd_len in
      while !pos < wd_end do
        let plen_c = b !pos in
        if not (branch "withdrawn-plen" (Cval.ule plen_c (c8 32))) then fail Bad_nlri;
        let plen = Cval.to_int plen_c in
        let nbytes = (plen + 7) / 8 in
        if !pos + 1 + nbytes > wd_end then fail Bad_nlri;
        pos := !pos + 1 + nbytes
      done;
      (* path attributes *)
      if wd_end + 2 > n then fail Bad_update_skeleton;
      let at_len_c = u16 wd_end in
      let at_len = Cval.to_int at_len_c in
      if
        not
          (branch "attrs-fit" (Cval.ule at_len_c (c16 (max 0 (n - wd_end - 2)))))
      then fail Bad_update_skeleton;
      let at_end = wd_end + 2 + at_len in
      pos := wd_end + 2;
      while !pos < at_end do
        if !pos + 2 > at_end then fail Bad_attribute;
        let flags = b !pos in
        let typc = b (!pos + 1) in
        let extended =
          branch "attr-extlen" (Cval.ne (Cval.logand flags (c8 0x10)) (c8 0))
        in
        let hdr = if extended then 4 else 3 in
        if !pos + hdr > at_end then fail Bad_attribute;
        let vlen =
          if extended then Cval.to_int (u16 (!pos + 2)) else Cval.to_int (b (!pos + 2))
        in
        if !pos + hdr + vlen > at_end then fail Bad_attribute;
        (* recognized well-known attributes must not be optional *)
        let is_wellknown =
          branch "attr-wellknown"
            (Cval.and_ (Cval.uge typc (c8 1)) (Cval.ule typc (c8 3)))
        in
        if is_wellknown then begin
          if not (branch "attr-flags-ok" (Cval.eq (Cval.logand flags (c8 0x80)) (c8 0)))
          then fail Bad_attribute;
          (* ORIGIN value constraint *)
          if Cval.to_int typc = 1 && vlen = 1 then begin
            let v = b (!pos + hdr) in
            if not (branch "origin-range" (Cval.ule v (c8 2))) then fail Bad_attribute
          end
        end;
        pos := !pos + hdr + vlen
      done;
      (* NLRI *)
      pos := at_end;
      while !pos < n do
        let plen_c = b !pos in
        if not (branch "nlri-plen" (Cval.ule plen_c (c8 32))) then fail Bad_nlri;
        let plen = Cval.to_int plen_c in
        let nbytes = (plen + 7) / 8 in
        if !pos + 1 + nbytes > n then fail Bad_nlri;
        pos := !pos + 1 + nbytes
      done;
      Valid_update
    end
    else if
      branch "type-known"
        (Cval.and_ (Cval.uge typ (c8 1)) (Cval.ule typ (c8 4)))
    then Valid_other
    else fail Bad_header
  with Stop d -> d
