open Dice_inet
open Dice_bgp

type agent = {
  name : string;
  addr : Ipv4.t;
  explorer_addr : Ipv4.t;
  live : Router.t;
  mutable cache : (bytes * int) option;  (* image, updates counter at capture *)
  mutable probes : int;
  mutable checkpoints : int;
}

let agent ~name ~addr ~explorer_addr live =
  { name; addr; explorer_addr; live; cache = None; probes = 0; checkpoints = 0 }

let agent_name t = t.name
let agent_addr t = t.addr

type verdict = {
  accepted : bool;
  installed : bool;
  origin_conflict : bool;
  covers_foreign : int;
  would_propagate : int;
}

(* The remote node's checkpoint of its own state — taken by the agent,
   never shipped to the exploring node. *)
let checkpoint_image t =
  let version = Router.updates_processed t.live in
  match t.cache with
  | Some (image, v) when v = version -> image
  | Some _ | None ->
    let image = Router.snapshot t.live in
    t.cache <- Some (image, version);
    t.checkpoints <- t.checkpoints + 1;
    image

let in_whitelist anycast prefix = List.exists (fun a -> Prefix.subsumes a prefix) anycast

let probe t ~from msg =
  match msg with
  | Msg.Update u when u.Msg.nlri <> [] -> begin
    t.probes <- t.probes + 1;
    let clone = Router.restore (Router.config t.live) (checkpoint_image t) in
    let pre = Router.loc_rib clone in
    let anycast = (Router.config t.live).Config_types.anycast in
    let announced_origin =
      match Route.of_attrs u.Msg.attrs with
      | Ok route -> Route.origin_as route
      | Error _ -> None
    in
    (* process over the isolated clone; outputs are never delivered *)
    let outs = Router.handle_msg clone ~peer:from msg in
    List.map
      (fun prefix ->
        let accepted =
          match Router.adj_rib_in clone from with
          | Some adj -> Rib.Adj.find_opt prefix adj <> None
          | None -> false
        in
        let installed =
          match Router.best_route clone prefix with
          | Some e -> e.Rib.Loc.src.Route.peer_addr = from
          | None -> false
        in
        let foreign_origin (e : Rib.Loc.entry) =
          match (Route.origin_as e.Rib.Loc.route, announced_origin) with
          | Some old_as, Some new_as -> old_as <> new_as
          | Some _, None -> true
          | None, _ -> false
        in
        let whitelisted = in_whitelist anycast prefix in
        let origin_conflict =
          accepted && (not whitelisted)
          && List.exists (fun (_, e) -> foreign_origin e) (Rib.Loc.covering prefix pre)
        in
        (* the announcement claims a super-block of space the remote node
           routes to other origins: a coverage leak (traffic for the
           uncovered gaps inside the block would be diverted) *)
        let covers_foreign =
          if accepted && not whitelisted then
            List.length
              (List.filter
                 (fun ((q, e) : Prefix.t * Rib.Loc.entry) ->
                   (not (Prefix.equal q prefix)) && foreign_origin e)
                 (Rib.Loc.covered prefix pre))
          else 0
        in
        let would_propagate =
          List.length
            (List.filter
               (fun o ->
                 match o with
                 | Router.To_peer (dst, Msg.Update u') ->
                   dst <> from && List.mem prefix u'.Msg.nlri
                 | Router.To_peer _ | Router.Connect_request _ | Router.Close_connection _
                 | Router.Set_timer _ | Router.Clear_timer _ | Router.Session_up _
                 | Router.Session_down _ ->
                   false)
               outs)
        in
        { accepted; installed; origin_conflict; covers_foreign; would_propagate })
      u.Msg.nlri
  end
  | Msg.Update _ | Msg.Open _ | Msg.Notification _ | Msg.Keepalive -> []

let probes_performed t = t.probes
let checkpoints_taken t = t.checkpoints

let checker ~agents =
  let agent_of addr = List.find_opt (fun a -> a.addr = addr) agents in
  let check (cctx : Checker.context) (outcome : Router.import_outcome) =
    if not outcome.Router.accepted then []
    else
      List.concat_map
        (fun output ->
          match output with
          | Router.To_peer (dst, (Msg.Update _ as msg)) -> begin
            match agent_of dst with
            | None -> []
            | Some a ->
              let from = a.explorer_addr in
              List.concat_map
                  (fun v ->
                    let base_details =
                      [ ("remote-node", a.name);
                        ("remote-accepted", string_of_bool v.accepted);
                        ("remote-installed", string_of_bool v.installed);
                        ("propagates-to", string_of_int v.would_propagate);
                        ("via-peer", Ipv4.to_string cctx.Checker.peer);
                      ]
                    in
                    let coverage =
                      if v.covers_foreign > 0 then
                        [ { Checker.checker = "remote-coverage-leak";
                            severity = Checker.Critical;
                            prefix = outcome.Router.prefix;
                            description =
                              Printf.sprintf
                                "explored announcement covers %d remote route(s) with other origins"
                                v.covers_foreign;
                            details = base_details;
                          } ]
                      else []
                    in
                    let conflicts =
                      if v.origin_conflict then
                        [ { Checker.checker = "remote-origin-conflict";
                            severity = Checker.Critical;
                            prefix = outcome.Router.prefix;
                            description =
                              "explored announcement overrides origins at a remote node";
                            details = base_details;
                          } ]
                      else []
                    in
                    let propagation =
                      if v.accepted && v.would_propagate > 0 then
                        [ { Checker.checker = "remote-propagation";
                            severity = Checker.Warning;
                            prefix = outcome.Router.prefix;
                            description =
                              "remote node would re-advertise the exploratory route";
                            details = base_details;
                          } ]
                      else []
                    in
                    conflicts @ coverage @ propagation)
                  (probe a ~from msg)
          end
          | Router.To_peer _ | Router.Connect_request _ | Router.Close_connection _
          | Router.Set_timer _ | Router.Clear_timer _ | Router.Session_up _
          | Router.Session_down _ ->
            [])
        outcome.Router.outputs
  in
  { Checker.name = "distributed"; check }
