(** Input symbolization policies (paper §3.2).

    The paper's key design choice: do {e not} mark the whole UPDATE
    message symbolic — that "simply exercises the message parsing code".
    Instead, selectively mark small message-derived fields (NLRI address
    and mask length, attribute values) so every generated input is a
    syntactically valid message and exploration reaches the route
    processing and policy code. Both modes are provided; experiment A1
    compares them. *)

open Dice_inet
open Dice_bgp
open Dice_concolic

type mode =
  | Selective  (** the paper's choice *)
  | Whole_message  (** strawman: every message byte is symbolic *)

val mode_to_string : mode -> string

val croute :
  Engine.ctx -> tag:string -> prefix:Prefix.t -> route:Route.t -> Croute.t
(** Selective symbolization of one observed announcement: the NLRI
    address ([<tag>.addr], 32 bits) and length ([<tag>.len], 8 bits,
    seed-constrained to [<= 32]), the ORIGIN code ([<tag>.origin],
    constrained to [<= 2]), the origin AS ([<tag>.origin_as]) and — when
    present — MED ([<tag>.med]). Defaults are the observed concrete
    values, so run 0 retraces the observed execution. *)

val message_bytes :
  Engine.ctx -> tag:string -> bytes -> Cval.t array
(** Whole-message symbolization: one 8-bit input per byte of the encoded
    message ([<tag>.b<i>]), defaulting to the observed bytes. *)

val concretize_bytes : Cval.t array -> bytes
(** The concrete message the current run denotes. *)
