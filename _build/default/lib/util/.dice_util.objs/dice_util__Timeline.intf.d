lib/util/timeline.mli:
