lib/util/rng.mli:
