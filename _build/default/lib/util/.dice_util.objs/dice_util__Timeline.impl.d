lib/util/timeline.ml: List
