lib/util/hashutil.ml: Bytes Char Int64 String
