lib/util/hashutil.mli:
