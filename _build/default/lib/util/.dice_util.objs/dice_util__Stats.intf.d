lib/util/stats.mli:
