let offset_basis = 0xCBF29CE484222325L
let prime = 0x100000001B3L

let fnv1a_bytes b off len =
  let h = ref offset_basis in
  for i = off to off + len - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code (Bytes.get b i)))) prime
  done;
  !h

let fnv1a_string s =
  let h = ref offset_basis in
  String.iter (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime) s;
  !h

let combine a b =
  Int64.mul (Int64.logxor (Int64.mul a prime) b) prime
