type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let obj fields = Obj fields
let list f xs = List (List.map f xs)
let string s = String s
let int i = Int i
let float f = Float f
let bool b = Bool b

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else begin
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
  end

let to_string ?(indent = false) t =
  let buf = Buffer.create 256 in
  let pad depth = if indent then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i x ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) x)
        xs;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if indent then "\": " else "\":");
          go (depth + 1) v)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)
