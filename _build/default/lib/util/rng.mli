(** Deterministic pseudo-random number generation.

    All randomized components of the reproduction (trace generation, random
    exploration strategy, workload synthesis) draw from this splittable
    SplitMix64 generator so that every experiment is reproducible from a
    seed. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy evolves
    independently. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Use to give subsystems their own streams without cross-coupling. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val bits32 : t -> int32
(** Next 32 random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]]. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val geometric : t -> float -> int
(** [geometric t p] samples the number of failures before the first success
    of a Bernoulli([p]) process; mean [(1-p)/p]. Requires [0 < p <= 1]. *)

val exponential : t -> float -> float
(** [exponential t rate] samples an exponential inter-arrival time with the
    given rate (events per unit time). *)

val zipf : t -> int -> float -> int
(** [zipf t n s] samples from a Zipf distribution over [\[1, n\]] with
    exponent [s], via rejection-inversion. Used for realistic AS-degree and
    prefix-popularity skews. *)
