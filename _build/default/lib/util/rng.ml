type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = int64 t }

let bits32 t = Int64.to_int32 (Int64.shift_right_logical (int64 t) 32)

let int t bound =
  assert (bound > 0);
  (* keep 62 bits so the value is non-negative in OCaml's 63-bit int *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (int64 t) 1L = 1L

let chance t p = float t 1.0 < p

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let pick_list t l =
  assert (l <> []);
  List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let geometric t p =
  assert (p > 0.0 && p <= 1.0);
  if p >= 1.0 then 0
  else
    let u = Stdlib.max 1e-12 (float t 1.0) in
    int_of_float (Float.floor (Float.log u /. Float.log (1.0 -. p)))

let exponential t rate =
  assert (rate > 0.0);
  let u = Stdlib.max 1e-12 (float t 1.0) in
  -.Float.log u /. rate

(* Rejection-inversion sampling for the Zipf distribution
   (Hörmann & Derflinger 1996). *)
let zipf t n s =
  assert (n >= 1);
  if n = 1 then 1
  else begin
    let h x = if Float.abs (s -. 1.0) < 1e-9 then Float.log x else (x ** (1.0 -. s)) /. (1.0 -. s) in
    let h_inv x =
      if Float.abs (s -. 1.0) < 1e-9 then Float.exp x
      else ((1.0 -. s) *. x) ** (1.0 /. (1.0 -. s))
    in
    let hx0 = h 0.5 -. (1.0 /. (0.5 ** s)) in
    let hn = h (float_of_int n +. 0.5) in
    let rec loop () =
      let u = hx0 +. float t (hn -. hx0) in
      let x = h_inv u in
      let k = int_of_float (Float.round x) in
      let k = if k < 1 then 1 else if k > n then n else k in
      if u >= h (float_of_int k +. 0.5) -. (1.0 /. (float_of_int k ** s)) then loop ()
      else k
    in
    loop ()
  end
