(** A minimal JSON value type and serializer (no external dependencies).

    Only what machine-readable reports need: construction and compact or
    indented printing with correct string escaping. There is deliberately
    no parser — the repository emits JSON, it never consumes it. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val obj : (string * t) list -> t
val list : ('a -> t) -> 'a list -> t
val string : string -> t
val int : int -> t
val float : float -> t
val bool : bool -> t

val escape : string -> string
(** JSON string-body escaping (no surrounding quotes). *)

val to_string : ?indent:bool -> t -> string
(** Serialize; [indent] (default [false]) pretty-prints with 2-space
    indentation. Floats print via ["%.17g"] minimized, NaN/infinities as
    [null] (JSON has no representation for them). *)

val pp : Format.formatter -> t -> unit
(** Compact form. *)
