(** Time-series recording of (virtual time, value) points, used by the
    throughput experiments to report rates over trace-replay windows. *)

type t

val create : unit -> t

val record : t -> float -> float -> unit
(** [record t time value] appends a point. Times must be non-decreasing. *)

val points : t -> (float * float) list
(** Points in chronological order. *)

val count_in : t -> float -> float -> int
(** [count_in t t0 t1] is the number of points with time in [\[t0, t1)]. *)

val sum_in : t -> float -> float -> float
(** Sum of values of points with time in [\[t0, t1)]. *)

val rate_in : t -> float -> float -> float
(** [rate_in t t0 t1] is [count_in t t0 t1 / (t1 - t0)]: events per unit
    time over a window. *)

val span : t -> float * float
(** First and last recorded time; [(0., 0.)] when empty. *)
