type t = {
  mutable rev_points : (float * float) list;
  mutable last_time : float;
  mutable n : int;
}

let create () = { rev_points = []; last_time = neg_infinity; n = 0 }

let record t time value =
  assert (time >= t.last_time);
  t.rev_points <- (time, value) :: t.rev_points;
  t.last_time <- time;
  t.n <- t.n + 1

let points t = List.rev t.rev_points

let fold_in t t0 t1 f init =
  List.fold_left
    (fun acc (time, v) -> if time >= t0 && time < t1 then f acc v else acc)
    init t.rev_points

let count_in t t0 t1 = fold_in t t0 t1 (fun acc _ -> acc + 1) 0
let sum_in t t0 t1 = fold_in t t0 t1 (fun acc v -> acc +. v) 0.0

let rate_in t t0 t1 =
  if t1 <= t0 then 0.0 else float_of_int (count_in t t0 t1) /. (t1 -. t0)

let span t =
  match t.rev_points with
  | [] -> (0.0, 0.0)
  | (last, _) :: _ ->
    let rec first = function
      | [ (time, _) ] -> time
      | _ :: rest -> first rest
      | [] -> assert false
    in
    (first t.rev_points, last)
