(** Content hashing for the copy-on-write page store. *)

val fnv1a_bytes : bytes -> int -> int -> int64
(** [fnv1a_bytes b off len] is the 64-bit FNV-1a hash of [b.(off..off+len-1)]. *)

val fnv1a_string : string -> int64
(** FNV-1a over a whole string. *)

val combine : int64 -> int64 -> int64
(** Mix two hashes into one (order-sensitive). *)
