(** Discrete-event simulated network.

    Nodes exchange opaque byte messages over point-to-point links with
    latency; a virtual clock advances from event to event. This is the
    stand-in for the paper's testbed of BIRD instances on virtual
    interfaces: deterministic, and fast enough to replay full routing
    tables. *)

type node_id = int

type t

type handler = t -> self:node_id -> from:node_id -> bytes -> unit
(** Invoked when a message is delivered to a node. *)

val create : unit -> t

val now : t -> float
(** Current virtual time, seconds. *)

val add_node : t -> name:string -> handler:handler -> node_id
(** Register a node. Ids are dense, starting at 0. *)

val set_handler : t -> node_id -> handler -> unit
(** Replace a node's handler (for wiring circular dependencies). *)

val node_name : t -> node_id -> string
val node_count : t -> int

val connect : t -> node_id -> node_id -> latency:float -> unit
(** Create a bidirectional link. Reconnecting updates the latency. *)

val disconnect : t -> node_id -> node_id -> unit

val connected : t -> node_id -> node_id -> bool
val neighbors : t -> node_id -> node_id list

val send : t -> src:node_id -> dst:node_id -> bytes -> unit
(** Queue a message for delivery after the link latency.
    @raise Invalid_argument if the nodes are not connected. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run a thunk after a virtual delay (timers). *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** @raise Invalid_argument if [time] is in the virtual past. *)

val step : t -> bool
(** Process the earliest pending event. [false] if none remain. *)

val run : ?until:float -> ?max_events:int -> t -> int
(** Process events until the queue is empty, virtual time would pass
    [until], or [max_events] have fired. Returns events processed. Events
    at exactly [until] do fire. *)

val pending : t -> int

val messages_sent : t -> int
val messages_delivered : t -> int
