type capture = { src : Network.node_id; dst : Network.node_id; msg : bytes }

type t = { name : string; mutable rev : capture list; mutable n : int }

let create ~name = { name; rev = []; n = 0 }

let name t = t.name

let send t ~src ~dst msg =
  t.rev <- { src; dst; msg } :: t.rev;
  t.n <- t.n + 1

let captured t = List.rev t.rev

let count t = t.n

let drain t =
  let out = List.rev t.rev in
  t.rev <- [];
  t.n <- 0;
  out

let clear t =
  t.rev <- [];
  t.n <- 0
