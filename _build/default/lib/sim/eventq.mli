(** Priority queue of timestamped events (binary min-heap).

    Events with equal timestamps fire in insertion order, which keeps
    simulations deterministic. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:float -> 'a -> unit
(** Schedule an event. Times may be in any order. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val peek_time : 'a t -> float option

val size : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit
