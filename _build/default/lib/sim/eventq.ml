type 'a cell = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a cell array;  (* heap.(0) unused when empty *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

(* Grow using [filler] (the cell about to be inserted) for the new slots,
   so no dummy value is ever fabricated. *)
let grow t filler =
  let cap = Array.length t.heap in
  if t.size >= cap then begin
    let ncap = max 16 (cap * 2) in
    let nh = Array.make ncap filler in
    Array.blit t.heap 0 nh 0 t.size;
    t.heap <- nh
  end

let push t ~time payload =
  let cell = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t cell;
  t.heap.(t.size) <- cell;
  t.size <- t.size + 1;
  (* sift up *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(!i) in
    t.heap.(!i) <- t.heap.(parent);
    t.heap.(parent) <- tmp;
    i := parent
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.heap.(!i) in
          t.heap.(!i) <- t.heap.(!smallest);
          t.heap.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let size t = t.size
let is_empty t = t.size = 0

let clear t =
  t.size <- 0;
  t.heap <- [||]
