lib/sim/isolation.ml: List Network
