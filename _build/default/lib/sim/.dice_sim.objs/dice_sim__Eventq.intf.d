lib/sim/eventq.mli:
