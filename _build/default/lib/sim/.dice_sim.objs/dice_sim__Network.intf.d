lib/sim/network.mli:
