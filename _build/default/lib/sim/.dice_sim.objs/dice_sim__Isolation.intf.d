lib/sim/isolation.mli: Network
