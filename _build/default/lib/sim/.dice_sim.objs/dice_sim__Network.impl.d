lib/sim/network.ml: Array Eventq Hashtbl List Printf
