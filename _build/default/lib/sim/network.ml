type node_id = int

type event =
  | Deliver of { src : node_id; dst : node_id; msg : bytes }
  | Thunk of (unit -> unit)

type t = {
  mutable clock : float;
  queue : event Eventq.t;
  mutable names : string array;
  mutable handlers : handler array;
  mutable n : int;
  links : (node_id * node_id, float) Hashtbl.t;  (* key has lower id first *)
  mutable sent : int;
  mutable delivered : int;
}

and handler = t -> self:node_id -> from:node_id -> bytes -> unit

let no_handler : handler = fun _ ~self:_ ~from:_ _ -> ()

let create () =
  {
    clock = 0.0;
    queue = Eventq.create ();
    names = [||];
    handlers = [||];
    n = 0;
    links = Hashtbl.create 16;
    sent = 0;
    delivered = 0;
  }

let now t = t.clock

let add_node t ~name ~handler =
  let id = t.n in
  if id >= Array.length t.names then begin
    let cap = max 8 (2 * Array.length t.names) in
    let nn = Array.make cap "" and nh = Array.make cap no_handler in
    Array.blit t.names 0 nn 0 t.n;
    Array.blit t.handlers 0 nh 0 t.n;
    t.names <- nn;
    t.handlers <- nh
  end;
  t.names.(id) <- name;
  t.handlers.(id) <- handler;
  t.n <- t.n + 1;
  id

let check_node t id fn =
  if id < 0 || id >= t.n then invalid_arg (Printf.sprintf "Network.%s: unknown node %d" fn id)

let set_handler t id h =
  check_node t id "set_handler";
  t.handlers.(id) <- h

let node_name t id =
  check_node t id "node_name";
  t.names.(id)

let node_count t = t.n

let link_key a b = if a <= b then (a, b) else (b, a)

let connect t a b ~latency =
  check_node t a "connect";
  check_node t b "connect";
  if a = b then invalid_arg "Network.connect: self-link";
  if latency < 0.0 then invalid_arg "Network.connect: negative latency";
  Hashtbl.replace t.links (link_key a b) latency

let disconnect t a b = Hashtbl.remove t.links (link_key a b)

let connected t a b = Hashtbl.mem t.links (link_key a b)

let neighbors t id =
  check_node t id "neighbors";
  Hashtbl.fold
    (fun (a, b) _ acc ->
      if a = id then b :: acc else if b = id then a :: acc else acc)
    t.links []
  |> List.sort compare

let send t ~src ~dst msg =
  check_node t src "send";
  check_node t dst "send";
  match Hashtbl.find_opt t.links (link_key src dst) with
  | None ->
    invalid_arg
      (Printf.sprintf "Network.send: %s and %s are not connected" t.names.(src) t.names.(dst))
  | Some latency ->
    t.sent <- t.sent + 1;
    Eventq.push t.queue ~time:(t.clock +. latency) (Deliver { src; dst; msg })

let schedule t ~delay thunk =
  if delay < 0.0 then invalid_arg "Network.schedule: negative delay";
  Eventq.push t.queue ~time:(t.clock +. delay) (Thunk thunk)

let schedule_at t ~time thunk =
  if time < t.clock then invalid_arg "Network.schedule_at: time in the past";
  Eventq.push t.queue ~time (Thunk thunk)

let dispatch t = function
  | Deliver { src; dst; msg } ->
    t.delivered <- t.delivered + 1;
    t.handlers.(dst) t ~self:dst ~from:src msg
  | Thunk f -> f ()

let step t =
  match Eventq.pop t.queue with
  | None -> false
  | Some (time, ev) ->
    t.clock <- max t.clock time;
    dispatch t ev;
    true

let run ?until ?max_events t =
  let fired = ref 0 in
  let continue = ref true in
  while !continue do
    let budget_ok =
      match max_events with
      | Some m -> !fired < m
      | None -> true
    in
    if not budget_ok then continue := false
    else begin
      match Eventq.peek_time t.queue with
      | None -> continue := false
      | Some time -> begin
        match until with
        | Some u when time > u ->
          t.clock <- max t.clock u;
          continue := false
        | Some _ | None ->
          ignore (step t);
          incr fired
      end
    end
  done;
  !fired

let pending t = Eventq.size t.queue

let messages_sent t = t.sent
let messages_delivered t = t.delivered
