(** Exploration sandboxes.

    During exploration DiCE "intercepts the messages generated" so the
    deployed system is unaffected (paper §2.3). A sandbox gives cloned
    nodes a send interface shaped like the live one, but every message is
    captured instead of delivered — and can later be inspected by checkers
    or forwarded into other sandboxed clones (the paper's envisioned
    cross-network extension, §2.4). *)

type capture = { src : Network.node_id; dst : Network.node_id; msg : bytes }

type t

val create : name:string -> t

val name : t -> string

val send : t -> src:Network.node_id -> dst:Network.node_id -> bytes -> unit
(** Capture a message. Never touches any live network. *)

val captured : t -> capture list
(** Captures in send order. *)

val count : t -> int

val drain : t -> capture list
(** Return captures in send order and clear the sandbox — used when
    forwarding exploration traffic into a remote node's sandboxed clone. *)

val clear : t -> unit
