(** Normalized routes: the attribute set of one announcement, plus the
    provenance the decision process needs. *)

open Dice_inet

type t = {
  origin : Attr.origin;
  as_path : Asn.Path.t;
  next_hop : Ipv4.t;
  med : int option;
  local_pref : int option;  (** set on import; iBGP carries it *)
  communities : Community.t list;
  atomic_aggregate : bool;
  aggregator : (int * Ipv4.t) option;
  unknowns : Attr.unknown list;
}

val make :
  ?origin:Attr.origin ->
  ?med:int option ->
  ?local_pref:int option ->
  ?communities:Community.t list ->
  ?atomic_aggregate:bool ->
  ?aggregator:(int * Ipv4.t) option ->
  ?unknowns:Attr.unknown list ->
  as_path:Asn.Path.t ->
  next_hop:Ipv4.t ->
  unit ->
  t

val of_attrs : Attr.t list -> (t, Attr.error) result
(** Normalize a decoded attribute list; fails on missing mandatory
    attributes (ORIGIN, AS_PATH, NEXT_HOP). *)

val to_attrs : t -> Attr.t list
(** Back to a canonical attribute list (sorted by type code). *)

val origin_as : t -> int option
(** The AS that originated the route — what the hijack checker compares. *)

val neighbor_as : t -> int option

val has_community : t -> Community.t -> bool
val add_community : t -> Community.t -> t
val remove_community : t -> Community.t -> t
val prepend_as : t -> int -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Where a route was learned, for tie-breaking and loop checks. *)
type src = {
  peer_addr : Ipv4.t;
  peer_asn : int;
  peer_bgp_id : Ipv4.t;
  ebgp : bool;
}

val static_src : src
(** Placeholder provenance for locally-originated (static) routes: they
    win every tie-break against learned routes. *)

val pp_src : Format.formatter -> src -> unit
