open Dice_inet

type policy =
  | All
  | Nothing
  | Use_filter of Filter.t

let pp_policy ppf = function
  | All -> Format.fprintf ppf "all"
  | Nothing -> Format.fprintf ppf "none"
  | Use_filter f -> Format.fprintf ppf "filter %s" f.Filter.name

type peer_cfg = {
  name : string;
  neighbor : Ipv4.t;
  remote_as : int;
  import_policy : policy;
  export_policy : policy;
  hold_time : float;
  keepalive_time : float;
  connect_retry_time : float;
}

type t = {
  router_id : Ipv4.t;
  local_as : int;
  peers : peer_cfg list;
  static_routes : (Prefix.t * Ipv4.t) list;
  filters : Filter.t list;
  anycast : Prefix.t list;
}

let default_peer ~name ~neighbor ~remote_as =
  {
    name;
    neighbor;
    remote_as;
    import_policy = All;
    export_policy = All;
    hold_time = 90.0;
    keepalive_time = 30.0;
    connect_retry_time = 5.0;
  }

let make ~router_id ~local_as ?(peers = []) ?(static_routes = []) ?(filters = [])
    ?(anycast = []) () =
  { router_id; local_as; peers; static_routes; filters; anycast }

let find_filter t name = List.find_opt (fun f -> f.Filter.name = name) t.filters

let find_peer t addr = List.find_opt (fun p -> p.neighbor = addr) t.peers
