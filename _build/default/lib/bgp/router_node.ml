open Dice_inet
module Net = Dice_sim.Network

(* transport framing tags *)
let tag_syn = 0x01
let tag_syn_ack = 0x02
let tag_bgp = 0x03
let tag_fin = 0x04

type t = {
  net : Net.t;
  mutable id : Net.node_id;
  router : Router.t;
  peer_nodes : (Ipv4.t, Net.node_id) Hashtbl.t;  (* neighbor addr -> node *)
  node_peers : (Net.node_id, Ipv4.t) Hashtbl.t;
  timer_gen : (Ipv4.t * Fsm.timer, int) Hashtbl.t;
  mutable observers : (Router.output -> unit) list;
  mutable update_observers : (peer:Ipv4.t -> Msg.update -> unit) list;
  mutable established : int;
  auto_restart : bool;
}

let node_id t = t.id
let router t = t.router
let network t = t.net

let frame tag payload =
  let b = Bytes.create (1 + Bytes.length payload) in
  Bytes.set b 0 (Char.chr tag);
  Bytes.blit payload 0 b 1 (Bytes.length payload);
  b

let gen_of t key =
  match Hashtbl.find_opt t.timer_gen key with
  | Some g -> g
  | None -> 0

let bump t key = Hashtbl.replace t.timer_gen key (gen_of t key + 1)

let rec execute t outputs = List.iter (execute_one t) outputs

and execute_one t output =
  List.iter (fun f -> f output) t.observers;
  match output with
  | Router.To_peer (addr, msg) -> begin
    match Hashtbl.find_opt t.peer_nodes addr with
    | Some dst when Net.connected t.net t.id dst ->
      Net.send t.net ~src:t.id ~dst (frame tag_bgp (Msg.encode msg))
    | Some _ | None -> ()  (* link down: the frame is lost, like a real packet *)
  end
  | Router.Connect_request addr -> begin
    match Hashtbl.find_opt t.peer_nodes addr with
    | Some dst when Net.connected t.net t.id dst ->
      Net.send t.net ~src:t.id ~dst (frame tag_syn Bytes.empty)
    | Some _ | None ->
      (* unreachable neighbor: the transport attempt fails *)
      execute t (Router.handle_event t.router ~peer:addr Fsm.Tcp_failed)
  end
  | Router.Close_connection addr -> begin
    match Hashtbl.find_opt t.peer_nodes addr with
    | Some dst ->
      if Net.connected t.net t.id dst then
        Net.send t.net ~src:t.id ~dst (frame tag_fin Bytes.empty)
    | None -> ()
  end
  | Router.Set_timer (addr, timer, delay) ->
    let key = (addr, timer) in
    bump t key;
    let my_gen = gen_of t key in
    Net.schedule t.net ~delay (fun () ->
        if gen_of t key = my_gen then
          execute t (Router.handle_event t.router ~peer:addr (Fsm.Timer_expired timer)))
  | Router.Clear_timer (addr, timer) -> bump t (addr, timer)
  | Router.Session_up _ -> t.established <- t.established + 1
  | Router.Session_down (addr, _) ->
    (* real daemons re-enter the FSM after an idle-hold delay; without
       this, any session reset (e.g. a collision notification) would be
       permanent in the simulation *)
    if t.auto_restart then
      Net.schedule t.net ~delay:5.0 (fun () ->
          if Router.peer_state t.router addr = Some Fsm.Idle then
            execute t (Router.handle_event t.router ~peer:addr Fsm.Manual_start))

let handle_frame t ~from bytes =
  match Hashtbl.find_opt t.node_peers from with
  | None -> ()  (* message from an unconfigured node: drop *)
  | Some addr ->
    if Bytes.length bytes = 0 then ()
    else begin
      let tag = Char.code (Bytes.get bytes 0) in
      let payload = Bytes.sub bytes 1 (Bytes.length bytes - 1) in
      if tag = tag_syn then begin
        (* passive open: acknowledge, and treat our own transport as up *)
        Net.send t.net ~src:t.id ~dst:from (frame tag_syn_ack Bytes.empty);
        execute t (Router.handle_event t.router ~peer:addr Fsm.Tcp_connected)
      end
      else if tag = tag_syn_ack then
        execute t (Router.handle_event t.router ~peer:addr Fsm.Tcp_connected)
      else if tag = tag_fin then
        execute t (Router.handle_event t.router ~peer:addr Fsm.Tcp_failed)
      else if tag = tag_bgp then begin
        if t.update_observers <> [] then begin
          match Msg.decode payload with
          | Ok (Msg.Update u) ->
            List.iter (fun f -> f ~peer:addr u) t.update_observers
          | Ok (Msg.Open _ | Msg.Keepalive | Msg.Notification _) | Error _ -> ()
        end;
        execute t (Router.handle_bytes t.router ~peer:addr payload)
      end
      else ()
    end

let attach ?(auto_restart = true) net ~name router =
  let t =
    {
      net;
      id = -1;
      router;
      peer_nodes = Hashtbl.create 8;
      node_peers = Hashtbl.create 8;
      timer_gen = Hashtbl.create 16;
      observers = [];
      update_observers = [];
      established = 0;
      auto_restart;
    }
  in
  let handler _net ~self:_ ~from bytes = handle_frame t ~from bytes in
  t.id <- Net.add_node net ~name ~handler;
  t

let bind_peer t ~neighbor ~node =
  Hashtbl.replace t.peer_nodes neighbor node;
  Hashtbl.replace t.node_peers node neighbor

let start t = execute t (Router.start t.router)

let on_output t f = t.observers <- t.observers @ [ f ]

let on_update t f = t.update_observers <- t.update_observers @ [ f ]

let frame_bgp msg = frame tag_bgp (Msg.encode msg)

let sessions_established t = t.established
