open Dice_inet
open Dice_concolic

type verdict =
  | Accepted of Croute.t
  | Rejected

let c32 v = Cval.concrete ~width:32 (Int64.of_int v)
let c8 v = Cval.concrete ~width:8 (Int64.of_int v)

let eval_term ~source_as (cr : Croute.t) = function
  | Filter.Int_lit n -> c32 n
  | Filter.Net_len -> cr.net_len
  | Filter.Local_pref_t -> cr.local_pref
  | Filter.Med_t -> cr.med
  | Filter.Origin_t -> cr.origin
  | Filter.Path_len -> c32 (Asn.Path.length cr.as_path)
  | Filter.Neighbor_as -> c32 (Option.value (Asn.Path.first_as cr.as_path) ~default:0)
  | Filter.Origin_as -> cr.origin_as
  | Filter.Source_as -> c32 source_as

let eval_cmp op a b =
  match op with
  | Filter.Ceq -> Cval.eq a b
  | Filter.Cne -> Cval.ne a b
  | Filter.Clt -> Cval.ult a b
  | Filter.Cle -> Cval.ule a b
  | Filter.Cgt -> Cval.ugt a b
  | Filter.Cge -> Cval.uge a b

(* Concolic prefix-pattern match; mirrors [Filter.pattern_matches].
   match <=> low <= len <= high
          /\ (addr xor base) >> (32 - min(base_len, len)) == 0.
   The min is expanded as a disjunction to stay branch-free. *)
let eval_pattern (pat : Filter.prefix_pattern) (cr : Croute.t) =
  let base_len = Prefix.len pat.base in
  let base_addr = c32 (Prefix.network pat.base) in
  let len_ok =
    Cval.and_ (Cval.uge cr.net_len (c8 pat.low)) (Cval.ule cr.net_len (c8 pat.high))
  in
  let diff = Cval.logxor cr.net_addr base_addr in
  let agree_base =
    (* len >= base_len: compare the base's bits *)
    if base_len = 0 then Cval.of_bool true
    else Cval.eq (Cval.shift_right diff (32 - base_len)) (c32 0)
  in
  let long_enough = Cval.uge cr.net_len (c8 base_len) in
  let shift_amount = Cval.sub (Cval.concrete ~width:8 32L) cr.net_len in
  let agree_len =
    (* len < base_len: compare only len bits (symbolic shift) *)
    Cval.eq (Cval.binop Sym.Lshr diff shift_amount) (c32 0)
  in
  let short = Cval.not_ long_enough in
  Cval.and_ len_ok
    (Cval.or_ (Cval.and_ long_enough agree_base) (Cval.and_ short agree_len))

let rec eval_cond ctx ~source_as cond (cr : Croute.t) =
  match cond with
  | Filter.True -> Cval.of_bool true
  | Filter.False -> Cval.of_bool false
  | Filter.Cmp (op, a, b) -> eval_cmp op (eval_term ~source_as cr a) (eval_term ~source_as cr b)
  | Filter.Match_net pats ->
    List.fold_left
      (fun acc pat -> Cval.or_ acc (eval_pattern pat cr))
      (Cval.of_bool false) pats
  | Filter.Path_has asn -> Cval.of_bool (Asn.Path.contains cr.as_path asn)
  | Filter.Has_community c -> Cval.of_bool (List.mem c cr.communities)
  | Filter.And (a, b) ->
    Cval.and_ (eval_cond ctx ~source_as a cr) (eval_cond ctx ~source_as b cr)
  | Filter.Or (a, b) ->
    Cval.or_ (eval_cond ctx ~source_as a cr) (eval_cond ctx ~source_as b cr)
  | Filter.Not c -> Cval.not_ (eval_cond ctx ~source_as c cr)

(* Decide a condition with short-circuit *branches*, the way interpreted
   configuration actually executes: each comparison atom — and each
   pattern of a prefix set — is its own branch site, so exploration can
   steer execution through every configured rule individually (the
   mechanism behind the paper's "comprehensive of both code and
   configuration"). Site names derive from the [If]'s site and the atom's
   position in the condition tree, so they are stable across runs. *)
let decide_cond ctx ~source_as ~site cond cr =
  let rec go path cond =
    let here suffix v = Engine.branchf ctx (site ^ ":" ^ path ^ suffix) v in
    match cond with
    | Filter.True -> true
    | Filter.False -> false
    | Filter.Cmp (_, _, _) as atom -> here "c" (eval_cond ctx ~source_as atom cr)
    | (Filter.Path_has _ | Filter.Has_community _) as atom ->
      Cval.bool_of (eval_cond ctx ~source_as atom cr)
    | Filter.Match_net pats ->
      let rec try_pats i = function
        | [] -> false
        | pat :: rest ->
          if here (Printf.sprintf "p%d" i) (eval_pattern pat cr) then true
          else try_pats (i + 1) rest
      in
      try_pats 0 pats
    | Filter.And (a, b) -> if go (path ^ "l") a then go (path ^ "r") b else false
    | Filter.Or (a, b) -> if go (path ^ "l") a then true else go (path ^ "r") b
    | Filter.Not c -> not (go (path ^ "n") c)
  in
  go "" cond

(* Statement execution: threads the (possibly modified) route; a verdict
   stops execution. *)
let rec exec_stmts ctx ~source_as ~local_as stmts cr =
  match stmts with
  | [] -> (cr, None)
  | stmt :: rest -> begin
    match stmt with
    | Filter.Accept -> (cr, Some (Accepted cr))
    | Filter.Reject -> (cr, Some Rejected)
    | Filter.Set_local_pref tm -> begin
      let cr = Croute.with_local_pref cr (eval_term ~source_as cr tm) in
      exec_stmts ctx ~source_as ~local_as rest cr
    end
    | Filter.Set_med tm ->
      exec_stmts ctx ~source_as ~local_as rest
        (Croute.with_med cr (eval_term ~source_as cr tm))
    | Filter.Add_community c ->
      exec_stmts ctx ~source_as ~local_as rest (Croute.add_community cr c)
    | Filter.Delete_community c ->
      exec_stmts ctx ~source_as ~local_as rest (Croute.remove_community cr c)
    | Filter.Prepend n ->
      let cr = ref cr in
      for _ = 1 to n do
        cr := Croute.prepend_as !cr local_as
      done;
      exec_stmts ctx ~source_as ~local_as rest !cr
    | Filter.If { site; cond; then_; else_ } -> begin
      let branch_taken = decide_cond ctx ~source_as ~site cond cr in
      let arm = if branch_taken then then_ else else_ in
      match exec_stmts ctx ~source_as ~local_as arm cr with
      | cr', None -> exec_stmts ctx ~source_as ~local_as rest cr'
      | (_, Some _) as stop -> stop
    end
  end

let run ctx ~source_as ~local_as (f : Filter.t) cr =
  match exec_stmts ctx ~source_as ~local_as f.Filter.body cr with
  | _, Some verdict -> verdict
  | _, None -> Rejected

let run_policy ctx ~source_as ~local_as (p : Config_types.policy) cr =
  match p with
  | Config_types.All -> Accepted cr
  | Config_types.Nothing -> Rejected
  | Config_types.Use_filter f -> run ctx ~source_as ~local_as f cr
