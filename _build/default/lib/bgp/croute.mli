(** Concolic routes: the attribute view of one announcement whose fields
    are {!Dice_concolic.Cval.t}s.

    During normal operation every field is purely concrete and the router
    pays nothing for the instrumentation. During exploration the
    symbolizer replaces selected fields (NLRI address and length, MED,
    LOCAL_PREF, origin AS — paper §3.2) with symbolic inputs, and the
    filter interpreter and decision process then record path constraints
    as they branch on them. *)

open Dice_inet
open Dice_concolic

type t = {
  net_addr : Cval.t;  (** 32-bit network address *)
  net_len : Cval.t;  (** 8-bit prefix length; invariant <= 32 *)
  next_hop : Cval.t;  (** 32 bits *)
  med : Cval.t;  (** 32 bits *)
  has_med : bool;
  local_pref : Cval.t;  (** 32 bits *)
  has_local_pref : bool;
  origin : Cval.t;  (** 8 bits: 0 IGP, 1 EGP, 2 INCOMPLETE *)
  origin_as : Cval.t;  (** 32 bits; defaults to the AS_PATH's last AS *)
  as_path : Asn.Path.t;  (** concrete *)
  communities : Community.t list;  (** concrete *)
  atomic_aggregate : bool;
  aggregator : (int * Ipv4.t) option;
  unknowns : Attr.unknown list;
}

val of_route : Prefix.t -> Route.t -> t
(** Purely concrete view of a decoded route. *)

val to_route : t -> Prefix.t * Route.t
(** Concretize. If [origin_as] differs from the AS_PATH's last AS, the
    path's final AS is rewritten accordingly (symbolized origin). *)

val prefix_of : t -> Prefix.t
(** The concrete prefix the concolic NLRI currently denotes. *)

val with_local_pref : t -> Cval.t -> t
val with_med : t -> Cval.t -> t
val add_community : t -> Community.t -> t
val remove_community : t -> Community.t -> t
val prepend_as : t -> int -> t

val pp : Format.formatter -> t -> unit
