(** The BGP finite state machine (RFC 4271 §8), as a pure transition
    function: [(state, event) -> (state, actions)]. Timer management and
    message transmission are delegated to the caller (the simulated router),
    keeping the machine deterministic and directly testable. *)

type state =
  | Idle
  | Connect
  | Active
  | Open_sent
  | Open_confirm
  | Established

val state_to_string : state -> string
val pp_state : Format.formatter -> state -> unit

type timer =
  | Connect_retry
  | Hold
  | Keepalive_timer

val timer_to_string : timer -> string

type event =
  | Manual_start
  | Manual_stop
  | Tcp_connected  (** transport session came up *)
  | Tcp_failed  (** transport failed or closed *)
  | Recv_open of Msg.open_msg
  | Recv_keepalive
  | Recv_update of Msg.update
  | Recv_notification of Msg.notification
  | Timer_expired of timer

type action =
  | Send_open
  | Send_keepalive
  | Send_notification of Msg.notification
  | Start_timer of timer
  | Stop_timer of timer
  | Initiate_connect  (** open the transport (simulated TCP) *)
  | Drop_connection
  | Deliver_update of Msg.update  (** hand the UPDATE to route processing *)
  | Session_established
  | Session_down of string

val step : state -> event -> state * action list
(** One transition. Unexpected events in a state produce the RFC-mandated
    fallback: send NOTIFICATION (FSM error) and return to [Idle]. *)

val initial : state
(** [Idle]. *)
