open Dice_inet

type token =
  | IDENT of string
  | INT of int
  | IP of Ipv4.t
  | PREFIX of Prefix.t
  | LBRACE
  | RBRACE
  | LBRACK
  | RBRACK
  | LPAREN
  | RPAREN
  | SEMI
  | COMMA
  | DOT
  | TILDE
  | PLUS
  | MINUS
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | ANDAND
  | OROR
  | BANG
  | COLON
  | EOF

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT n -> Printf.sprintf "integer %d" n
  | IP a -> Printf.sprintf "address %s" (Ipv4.to_string a)
  | PREFIX p -> Printf.sprintf "prefix %s" (Prefix.to_string p)
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACK -> "'['"
  | RBRACK -> "']'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | DOT -> "'.'"
  | TILDE -> "'~'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | EQ -> "'='"
  | NE -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | BANG -> "'!'"
  | COLON -> "':'"
  | EOF -> "end of input"

exception Lex_error of { line : int; msg : string }

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let lex src =
  let n = String.length src in
  let pos = ref 0 in
  let line = ref 1 in
  let out = ref [] in
  let emit tok = out := (tok, !line) :: !out in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let error msg = raise (Lex_error { line = !line; msg }) in
  let read_int () =
    let start = !pos in
    while !pos < n && is_digit src.[!pos] do
      incr pos
    done;
    int_of_string (String.sub src start (!pos - start))
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '#' then
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    else if is_digit c then begin
      (* integer, address, or prefix *)
      let a = read_int () in
      if peek 0 = Some '.' && (match peek 1 with Some d -> is_digit d | None -> false)
      then begin
        let octet what v = if v < 0 || v > 255 then error (what ^ " octet out of range") in
        incr pos;
        let b = read_int () in
        if peek 0 <> Some '.' then error "malformed address (expected second '.')";
        incr pos;
        let c' = read_int () in
        if peek 0 <> Some '.' then error "malformed address (expected third '.')";
        incr pos;
        let d = read_int () in
        octet "first" a;
        octet "second" b;
        octet "third" c';
        octet "fourth" d;
        let addr = Ipv4.of_octets a b c' d in
        if peek 0 = Some '/' then begin
          incr pos;
          if not (match peek 0 with Some ch -> is_digit ch | None -> false) then
            error "expected prefix length after '/'";
          let len = read_int () in
          if len > 32 then error "prefix length > 32";
          emit (PREFIX (Prefix.make addr len))
        end
        else emit (IP addr)
      end
      else emit (INT a)
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      emit (IDENT (String.sub src start (!pos - start)))
    end
    else begin
      let two tok = emit tok; pos := !pos + 2 in
      let one tok = emit tok; incr pos in
      match (c, peek 1) with
      | '&', Some '&' -> two ANDAND
      | '|', Some '|' -> two OROR
      | '!', Some '=' -> two NE
      | '<', Some '=' -> two LE
      | '>', Some '=' -> two GE
      | '=', Some '=' -> two EQ  (* tolerate '==' as '=' *)
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | '[', _ -> one LBRACK
      | ']', _ -> one RBRACK
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | ';', _ -> one SEMI
      | ',', _ -> one COMMA
      | '.', _ -> one DOT
      | '~', _ -> one TILDE
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '=', _ -> one EQ
      | '<', _ -> one LT
      | '>', _ -> one GT
      | '!', _ -> one BANG
      | ':', _ -> one COLON
      | _, _ -> error (Printf.sprintf "unexpected character %C" c)
    end
  done;
  emit EOF;
  List.rev !out
