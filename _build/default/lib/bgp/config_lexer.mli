(** Lexer for the BIRD-style configuration language. *)

open Dice_inet

type token =
  | IDENT of string  (** identifiers and keywords *)
  | INT of int
  | IP of Ipv4.t  (** dotted quad *)
  | PREFIX of Prefix.t  (** dotted quad followed by [/len] *)
  | LBRACE
  | RBRACE
  | LBRACK
  | RBRACK
  | LPAREN
  | RPAREN
  | SEMI
  | COMMA
  | DOT
  | TILDE
  | PLUS
  | MINUS
  | EQ  (** [=] — assignment or equality, by context *)
  | NE  (** [!=] *)
  | LT
  | LE
  | GT
  | GE
  | ANDAND
  | OROR
  | BANG
  | COLON
  | EOF

val token_to_string : token -> string

exception Lex_error of { line : int; msg : string }

val lex : string -> (token * int) list
(** Tokenize; each token is paired with its 1-based source line. Comments
    ([# to end of line]) and whitespace are skipped. The result ends with
    [EOF]. @raise Lex_error on unexpected characters. *)
