open Dice_inet
module L = Config_lexer

exception Parse_error of { line : int; msg : string }

type state = { toks : (L.token * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let line st = snd st.toks.(st.pos)

let fail st msg = raise (Parse_error { line = line st; msg })

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok what =
  let t = next st in
  if t <> tok then
    fail st (Printf.sprintf "expected %s, got %s" what (L.token_to_string t))

let expect_ident st kw =
  match next st with
  | L.IDENT s when s = kw -> ()
  | t -> fail st (Printf.sprintf "expected %S, got %s" kw (L.token_to_string t))

let parse_int st what =
  match next st with
  | L.INT n -> n
  | t -> fail st (Printf.sprintf "expected %s, got %s" what (L.token_to_string t))

let parse_ip st what =
  match next st with
  | L.IP a -> a
  | t -> fail st (Printf.sprintf "expected %s, got %s" what (L.token_to_string t))

let parse_prefix st what =
  match next st with
  | L.PREFIX p -> p
  | L.IP a -> Prefix.host a
  | t -> fail st (Printf.sprintf "expected %s, got %s" what (L.token_to_string t))

let parse_name st what =
  match next st with
  | L.IDENT s -> s
  | t -> fail st (Printf.sprintf "expected %s, got %s" what (L.token_to_string t))

let parse_community st =
  let a = parse_int st "community AS part" in
  expect st L.COLON "':'";
  let v = parse_int st "community value part" in
  if a > 0xFFFF || v > 0xFFFF then fail st "community parts must be <= 65535";
  Community.make a v

(* pattern := PREFIX ('+' | '-' | '{' INT ',' INT '}')? *)
let parse_pattern st =
  let base = parse_prefix st "prefix pattern" in
  let bl = Prefix.len base in
  match peek st with
  | L.PLUS ->
    advance st;
    { Filter.base; low = bl; high = 32 }
  | L.MINUS ->
    advance st;
    { Filter.base; low = 0; high = bl }
  | L.LBRACE ->
    advance st;
    let low = parse_int st "pattern low bound" in
    expect st L.COMMA "','";
    let high = parse_int st "pattern high bound" in
    expect st L.RBRACE "'}'";
    if low > high || high > 32 then fail st "bad pattern bounds";
    { Filter.base; low; high }
  | _ -> { Filter.base; low = bl; high = bl }

let parse_pattern_list st =
  expect st L.LBRACK "'['";
  let rec go acc =
    let p = parse_pattern st in
    match peek st with
    | L.COMMA ->
      advance st;
      go (p :: acc)
    | L.RBRACK ->
      advance st;
      List.rev (p :: acc)
    | _ -> fail st "expected ',' or ']' in prefix set"
  in
  go []

(* term := INT | net.len | bgp_local_pref | bgp_med | bgp_origin
         | source_as | bgp_path.(len|first|last) *)
let parse_term st =
  match next st with
  | L.INT n -> Filter.Int_lit n
  | L.IDENT "net" ->
    expect st L.DOT "'.'";
    expect_ident st "len";
    Filter.Net_len
  | L.IDENT "bgp_local_pref" -> Filter.Local_pref_t
  | L.IDENT "bgp_med" -> Filter.Med_t
  | L.IDENT "bgp_origin" -> Filter.Origin_t
  | L.IDENT "source_as" -> Filter.Source_as
  | L.IDENT "bgp_path" -> begin
    expect st L.DOT "'.'";
    match next st with
    | L.IDENT "len" -> Filter.Path_len
    | L.IDENT "first" -> Filter.Neighbor_as
    | L.IDENT "last" -> Filter.Origin_as
    | t -> fail st (Printf.sprintf "expected len/first/last, got %s" (L.token_to_string t))
  end
  | t -> fail st (Printf.sprintf "expected a term, got %s" (L.token_to_string t))

let parse_cmpop st =
  match next st with
  | L.EQ -> Filter.Ceq
  | L.NE -> Filter.Cne
  | L.LT -> Filter.Clt
  | L.LE -> Filter.Cle
  | L.GT -> Filter.Cgt
  | L.GE -> Filter.Cge
  | t -> fail st (Printf.sprintf "expected a comparison, got %s" (L.token_to_string t))

(* cond atoms; 'net ~ [...]', 'bgp_path ~ N', 'bgp_community ~ a:b' need
   lookahead after the identifier. *)
let rec parse_atom st =
  match peek st with
  | L.LPAREN ->
    advance st;
    let c = parse_cond st in
    expect st L.RPAREN "')'";
    c
  | L.BANG ->
    advance st;
    Filter.Not (parse_atom st)
  | L.IDENT "true" ->
    advance st;
    Filter.True
  | L.IDENT "false" ->
    advance st;
    Filter.False
  | L.IDENT "net" when fst st.toks.(st.pos + 1) = L.TILDE ->
    advance st;
    advance st;
    Filter.Match_net (parse_pattern_list st)
  | L.IDENT "bgp_path" when fst st.toks.(st.pos + 1) = L.TILDE ->
    advance st;
    advance st;
    Filter.Path_has (parse_int st "AS number")
  | L.IDENT "bgp_community" when fst st.toks.(st.pos + 1) = L.TILDE ->
    advance st;
    advance st;
    Filter.Has_community (parse_community st)
  | _ ->
    let a = parse_term st in
    let op = parse_cmpop st in
    let b = parse_term st in
    Filter.Cmp (op, a, b)

and parse_and st =
  let a = parse_atom st in
  if peek st = L.ANDAND then begin
    advance st;
    Filter.And (a, parse_and st)
  end
  else a

and parse_cond st =
  let a = parse_and st in
  if peek st = L.OROR then begin
    advance st;
    Filter.Or (a, parse_cond st)
  end
  else a

let rec parse_stmt ~filter_name st =
  match peek st with
  | L.IDENT "if" -> begin
    advance st;
    let cond = parse_cond st in
    expect_ident st "then";
    let then_ = parse_block ~filter_name st in
    let else_ =
      if peek st = L.IDENT "else" then begin
        advance st;
        parse_block ~filter_name st
      end
      else []
    in
    Filter.mk_if ~filter_name cond then_ else_
  end
  | L.IDENT "accept" ->
    advance st;
    expect st L.SEMI "';'";
    Filter.Accept
  | L.IDENT "reject" ->
    advance st;
    expect st L.SEMI "';'";
    Filter.Reject
  | L.IDENT "bgp_local_pref" ->
    advance st;
    expect st L.EQ "'='";
    let t = parse_term st in
    expect st L.SEMI "';'";
    Filter.Set_local_pref t
  | L.IDENT "bgp_med" ->
    advance st;
    expect st L.EQ "'='";
    let t = parse_term st in
    expect st L.SEMI "';'";
    Filter.Set_med t
  | L.IDENT "bgp_community" -> begin
    advance st;
    expect st L.DOT "'.'";
    let op = parse_name st "add/delete" in
    expect st L.LPAREN "'('";
    let c = parse_community st in
    expect st L.RPAREN "')'";
    expect st L.SEMI "';'";
    match op with
    | "add" -> Filter.Add_community c
    | "delete" -> Filter.Delete_community c
    | other -> fail st (Printf.sprintf "unknown community operation %S" other)
  end
  | L.IDENT "bgp_path" ->
    advance st;
    expect st L.DOT "'.'";
    expect_ident st "prepend";
    expect st L.LPAREN "'('";
    let n = parse_int st "prepend count" in
    expect st L.RPAREN "')'";
    expect st L.SEMI "';'";
    Filter.Prepend n
  | t -> fail st (Printf.sprintf "expected a filter statement, got %s" (L.token_to_string t))

and parse_block ~filter_name st =
  if peek st = L.LBRACE then begin
    advance st;
    let rec go acc =
      if peek st = L.RBRACE then begin
        advance st;
        List.rev acc
      end
      else go (parse_stmt ~filter_name st :: acc)
    in
    go []
  end
  else [ parse_stmt ~filter_name st ]

let parse_filter_decl st =
  let name = parse_name st "filter name" in
  expect st L.LBRACE "'{'";
  let rec go acc =
    if peek st = L.RBRACE then begin
      advance st;
      List.rev acc
    end
    else go (parse_stmt ~filter_name:name st :: acc)
  in
  { Filter.name; body = go [] }

let parse_policy st =
  match next st with
  | L.IDENT "all" -> `All
  | L.IDENT "none" -> `Nothing
  | L.IDENT "filter" -> `Filter (parse_name st "filter name")
  | t -> fail st (Printf.sprintf "expected all/none/filter, got %s" (L.token_to_string t))

let parse_bgp_protocol st ~filters =
  let name = parse_name st "protocol name" in
  expect st L.LBRACE "'{'";
  let neighbor = ref None in
  let remote_as = ref None in
  let import_policy = ref Config_types.All in
  let export_policy = ref Config_types.All in
  let hold = ref 90.0 in
  let keepalive = ref None in
  let retry = ref 5.0 in
  let resolve = function
    | `All -> Config_types.All
    | `Nothing -> Config_types.Nothing
    | `Filter fname -> begin
      match List.find_opt (fun f -> f.Filter.name = fname) filters with
      | Some f -> Config_types.Use_filter f
      | None -> fail st (Printf.sprintf "unknown filter %S" fname)
    end
  in
  let rec go () =
    if peek st = L.RBRACE then advance st
    else begin
      (match next st with
      | L.IDENT "neighbor" ->
        neighbor := Some (parse_ip st "neighbor address");
        expect_ident st "as";
        remote_as := Some (parse_int st "AS number");
        expect st L.SEMI "';'"
      | L.IDENT "import" ->
        import_policy := resolve (parse_policy st);
        expect st L.SEMI "';'"
      | L.IDENT "export" ->
        export_policy := resolve (parse_policy st);
        expect st L.SEMI "';'"
      | L.IDENT "hold" ->
        expect_ident st "time";
        hold := float_of_int (parse_int st "hold time");
        expect st L.SEMI "';'"
      | L.IDENT "keepalive" ->
        expect_ident st "time";
        keepalive := Some (float_of_int (parse_int st "keepalive time"));
        expect st L.SEMI "';'"
      | L.IDENT "connect" ->
        expect_ident st "retry";
        expect_ident st "time";
        retry := float_of_int (parse_int st "connect retry time");
        expect st L.SEMI "';'"
      | t -> fail st (Printf.sprintf "unexpected %s in bgp protocol" (L.token_to_string t)));
      go ()
    end
  in
  go ();
  match (!neighbor, !remote_as) with
  | Some neighbor, Some remote_as ->
    {
      Config_types.name;
      neighbor;
      remote_as;
      import_policy = !import_policy;
      export_policy = !export_policy;
      hold_time = !hold;
      keepalive_time = Option.value !keepalive ~default:(!hold /. 3.0);
      connect_retry_time = !retry;
    }
  | None, _ -> fail st (Printf.sprintf "protocol bgp %s: missing neighbor" name)
  | _, None -> fail st (Printf.sprintf "protocol bgp %s: missing remote AS" name)

let parse_static st =
  expect st L.LBRACE "'{'";
  let rec go acc =
    if peek st = L.RBRACE then begin
      advance st;
      List.rev acc
    end
    else begin
      expect_ident st "route";
      let p = parse_prefix st "static route prefix" in
      expect_ident st "via";
      let via = parse_ip st "next hop" in
      expect st L.SEMI "';'";
      go ((p, via) :: acc)
    end
  in
  go []

let parse_config st =
  let router_id = ref None in
  let local_as = ref None in
  let filters = ref [] in
  let peers = ref [] in
  let statics = ref [] in
  let anycast = ref [] in
  let rec go () =
    match next st with
    | L.EOF -> ()
    | L.IDENT "router" ->
      expect_ident st "id";
      router_id := Some (parse_ip st "router id");
      expect st L.SEMI "';'";
      go ()
    | L.IDENT "local" ->
      expect_ident st "as";
      local_as := Some (parse_int st "AS number");
      expect st L.SEMI "';'";
      go ()
    | L.IDENT "filter" ->
      filters := parse_filter_decl st :: !filters;
      go ()
    | L.IDENT "protocol" -> begin
      match next st with
      | L.IDENT "static" ->
        statics := !statics @ parse_static st;
        go ()
      | L.IDENT "bgp" ->
        peers := parse_bgp_protocol st ~filters:!filters :: !peers;
        go ()
      | t -> fail st (Printf.sprintf "unknown protocol %s" (L.token_to_string t))
    end
    | L.IDENT "anycast" ->
      let pats = parse_pattern_list st in
      expect st L.SEMI "';'";
      anycast := !anycast @ List.map (fun p -> p.Filter.base) pats;
      go ()
    | t -> fail st (Printf.sprintf "unexpected %s at top level" (L.token_to_string t))
  in
  go ();
  match (!router_id, !local_as) with
  | Some router_id, Some local_as ->
    Config_types.make ~router_id ~local_as ~peers:(List.rev !peers)
      ~static_routes:!statics ~filters:(List.rev !filters) ~anycast:!anycast ()
  | None, _ -> fail st "missing 'router id'"
  | _, None -> fail st "missing 'local as'"

let state_of_string src = { toks = Array.of_list (L.lex src); pos = 0 }

let parse src = parse_config (state_of_string src)

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse src

let parse_filter ~name src =
  let st = state_of_string (Printf.sprintf "filter %s { %s }" name src) in
  expect_ident st "filter";
  parse_filter_decl st
