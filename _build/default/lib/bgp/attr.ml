open Dice_inet
module Wbuf = Dice_wire.Wbuf
module Rbuf = Dice_wire.Rbuf

type origin =
  | Igp
  | Egp
  | Incomplete

let origin_code = function
  | Igp -> 0
  | Egp -> 1
  | Incomplete -> 2

let origin_of_code = function
  | 0 -> Some Igp
  | 1 -> Some Egp
  | 2 -> Some Incomplete
  | _ -> None

let origin_to_string = function
  | Igp -> "IGP"
  | Egp -> "EGP"
  | Incomplete -> "INCOMPLETE"

type unknown = { flags : int; typ : int; data : bytes }

type t =
  | Origin of origin
  | As_path of Asn.Path.t
  | Next_hop of Ipv4.t
  | Med of int
  | Local_pref of int
  | Atomic_aggregate
  | Aggregator of int * Ipv4.t
  | Communities of Community.t list
  | Unknown of unknown

let type_code = function
  | Origin _ -> 1
  | As_path _ -> 2
  | Next_hop _ -> 3
  | Med _ -> 4
  | Local_pref _ -> 5
  | Atomic_aggregate -> 6
  | Aggregator _ -> 7
  | Communities _ -> 8
  | Unknown u -> u.typ

type error =
  | Malformed_attribute_list
  | Unrecognized_wellknown of int
  | Missing_wellknown of int
  | Attribute_flags_error of int
  | Attribute_length_error of int
  | Invalid_origin
  | Invalid_next_hop
  | Optional_attribute_error of int
  | Malformed_as_path
  | Duplicate_attribute of int

let error_subcode = function
  | Malformed_attribute_list -> 1
  | Unrecognized_wellknown _ -> 2
  | Missing_wellknown _ -> 3
  | Attribute_flags_error _ -> 4
  | Attribute_length_error _ -> 5
  | Invalid_origin -> 6
  | Invalid_next_hop -> 8
  | Optional_attribute_error _ -> 9
  | Malformed_as_path -> 11
  | Duplicate_attribute _ -> 1

let error_to_string = function
  | Malformed_attribute_list -> "malformed attribute list"
  | Unrecognized_wellknown t -> Printf.sprintf "unrecognized well-known attribute %d" t
  | Missing_wellknown t -> Printf.sprintf "missing well-known attribute %d" t
  | Attribute_flags_error t -> Printf.sprintf "attribute flags error on type %d" t
  | Attribute_length_error t -> Printf.sprintf "attribute length error on type %d" t
  | Invalid_origin -> "invalid ORIGIN value"
  | Invalid_next_hop -> "invalid NEXT_HOP"
  | Optional_attribute_error t -> Printf.sprintf "optional attribute error on type %d" t
  | Malformed_as_path -> "malformed AS_PATH"
  | Duplicate_attribute t -> Printf.sprintf "duplicate attribute %d" t

(* flag bits *)
let f_optional = 0x80
let f_transitive = 0x40
let f_partial = 0x20
let f_extlen = 0x10

let flags_of = function
  | Origin _ | As_path _ | Next_hop _ | Local_pref _ | Atomic_aggregate -> f_transitive
  | Med _ -> f_optional
  | Aggregator _ | Communities _ -> f_optional lor f_transitive
  | Unknown u -> u.flags

let encode_asn ~as4 w asn = if as4 then Wbuf.u32 w asn else Wbuf.u16 w (asn land 0xFFFF)

let encode_path ~as4 w path =
  List.iter
    (fun seg ->
      let typ, asns =
        match seg with
        | Asn.Path.Set s -> (1, s)
        | Asn.Path.Seq s -> (2, s)
      in
      Wbuf.u8 w typ;
      Wbuf.u8 w (List.length asns);
      List.iter (encode_asn ~as4 w) asns)
    path

let value_bytes ~as4 t =
  let w = Wbuf.create () in
  (match t with
  | Origin o -> Wbuf.u8 w (origin_code o)
  | As_path p -> encode_path ~as4 w p
  | Next_hop a -> Wbuf.u32 w a
  | Med v -> Wbuf.u32 w v
  | Local_pref v -> Wbuf.u32 w v
  | Atomic_aggregate -> ()
  | Aggregator (asn, a) ->
    encode_asn ~as4 w asn;
    Wbuf.u32 w a
  | Communities cs -> List.iter (Wbuf.u32 w) cs
  | Unknown u -> Wbuf.bytes w u.data);
  Wbuf.contents w

let encode ~as4 w t =
  let value = value_bytes ~as4 t in
  let len = Bytes.length value in
  let flags = flags_of t in
  let flags = if len > 0xFF then flags lor f_extlen else flags land lnot f_extlen in
  Wbuf.u8 w flags;
  Wbuf.u8 w (type_code t);
  if flags land f_extlen <> 0 then Wbuf.u16 w len else Wbuf.u8 w len;
  Wbuf.bytes w value

let encode_list ~as4 w ts = List.iter (encode ~as4 w) ts

(* Required flag shape for recognized attributes: (optional, transitive). *)
let expected_flags typ =
  match typ with
  | 1 | 2 | 3 | 5 | 6 -> Some (false, true)  (* well-known mandatory/discretionary *)
  | 4 -> Some (true, false)  (* MED: optional non-transitive *)
  | 7 | 8 -> Some (true, true)  (* AGGREGATOR, COMMUNITIES: optional transitive *)
  | _ -> None

let decode_asn ~as4 r = if as4 then Rbuf.u32 ~what:"asn" r else Rbuf.u16 ~what:"asn" r

let decode_path ~as4 r =
  let rec segs acc =
    if Rbuf.eof r then Ok (List.rev acc)
    else begin
      let typ = Rbuf.u8 ~what:"segment type" r in
      let n = Rbuf.u8 ~what:"segment length" r in
      if Rbuf.remaining r < n * (if as4 then 4 else 2) then Error Malformed_as_path
      else begin
        let asns = List.init n (fun _ -> decode_asn ~as4 r) in
        match typ with
        | 1 -> segs (Asn.Path.Set asns :: acc)
        | 2 -> segs (Asn.Path.Seq asns :: acc)
        | _ -> Error Malformed_as_path
      end
    end
  in
  segs []

let decode_one ~as4 r =
  let flags = Rbuf.u8 ~what:"attr flags" r in
  let typ = Rbuf.u8 ~what:"attr type" r in
  let len =
    if flags land f_extlen <> 0 then Rbuf.u16 ~what:"attr extlen" r
    else Rbuf.u8 ~what:"attr len" r
  in
  if Rbuf.remaining r < len then Error Malformed_attribute_list
  else begin
    let body = Rbuf.sub r len in
    (* flag validation for recognized types *)
    match expected_flags typ with
    | Some (opt, trans) when
        (flags land f_optional <> 0) <> opt
        || ((not opt) && (flags land f_transitive <> 0) <> trans) ->
      Error (Attribute_flags_error typ)
    | Some _ | None -> begin
      let exact n f = if len <> n then Error (Attribute_length_error typ) else f () in
      match typ with
      | 1 ->
        exact 1 (fun () ->
            match origin_of_code (Rbuf.u8 body) with
            | Some o -> Ok (Origin o)
            | None -> Error Invalid_origin)
      | 2 -> Result.map (fun p -> As_path p) (decode_path ~as4 body)
      | 3 ->
        exact 4 (fun () ->
            let a = Rbuf.u32 body in
            (* 0.0.0.0 and class-E/broadcast are not valid unicast next hops *)
            if a = 0 || a >= Ipv4.of_octets 240 0 0 0 then Error Invalid_next_hop
            else Ok (Next_hop a))
      | 4 -> exact 4 (fun () -> Ok (Med (Rbuf.u32 body)))
      | 5 -> exact 4 (fun () -> Ok (Local_pref (Rbuf.u32 body)))
      | 6 -> exact 0 (fun () -> Ok Atomic_aggregate)
      | 7 ->
        let need = if as4 then 8 else 6 in
        exact need (fun () ->
            let asn = decode_asn ~as4 body in
            Ok (Aggregator (asn, Rbuf.u32 body)))
      | 8 ->
        if len mod 4 <> 0 then Error (Attribute_length_error typ)
        else Ok (Communities (List.init (len / 4) (fun _ -> Rbuf.u32 body)))
      | _ ->
        if flags land f_optional = 0 then Error (Unrecognized_wellknown typ)
        else begin
          (* unknown optional: keep transitive ones (marking partial),
             silently usable either way at this layer *)
          let data = Rbuf.take body len in
          let flags =
            if flags land f_transitive <> 0 then flags lor f_partial else flags
          in
          Ok (Unknown { flags; typ; data })
        end
    end
  end

let decode_list ~as4 r =
  let seen = Hashtbl.create 8 in
  let rec go acc =
    if Rbuf.eof r then Ok (List.rev acc)
    else begin
      match decode_one ~as4 r with
      | Error e -> Error e
      | Ok attr ->
        let typ = type_code attr in
        if Hashtbl.mem seen typ then Error (Duplicate_attribute typ)
        else begin
          Hashtbl.add seen typ ();
          go (attr :: acc)
        end
    end
  in
  try go [] with Rbuf.Truncated _ -> Error Malformed_attribute_list

let pp ppf = function
  | Origin o -> Format.fprintf ppf "origin %s" (origin_to_string o)
  | As_path p -> Format.fprintf ppf "as_path [%a]" Asn.Path.pp p
  | Next_hop a -> Format.fprintf ppf "next_hop %a" Ipv4.pp a
  | Med v -> Format.fprintf ppf "med %d" v
  | Local_pref v -> Format.fprintf ppf "local_pref %d" v
  | Atomic_aggregate -> Format.fprintf ppf "atomic_aggregate"
  | Aggregator (asn, a) -> Format.fprintf ppf "aggregator %a %a" Asn.pp asn Ipv4.pp a
  | Communities cs ->
    Format.fprintf ppf "communities [%s]"
      (String.concat " " (List.map Community.to_string cs))
  | Unknown u -> Format.fprintf ppf "unknown type=%d len=%d" u.typ (Bytes.length u.data)

let to_string t = Format.asprintf "%a" pp t
