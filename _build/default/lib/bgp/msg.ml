open Dice_inet
module Wbuf = Dice_wire.Wbuf
module Rbuf = Dice_wire.Rbuf

let marker_len = 16
let header_len = 19
let max_len = 4096

type capability =
  | Cap_as4 of int
  | Cap_mp of int * int
  | Cap_other of int * bytes

type open_msg = {
  version : int;
  my_as : int;
  hold_time : int;
  bgp_id : Ipv4.t;
  capabilities : capability list;
}

type update = {
  withdrawn : Prefix.t list;
  attrs : Attr.t list;
  nlri : Prefix.t list;
}

type notification = { code : int; subcode : int; data : bytes }

type t =
  | Open of open_msg
  | Update of update
  | Notification of notification
  | Keepalive

type error =
  | Header_error of { subcode : int; reason : string }
  | Open_error of { subcode : int; reason : string }
  | Update_error of Attr.error
  | Update_malformed of string

let error_notification = function
  | Header_error { subcode; _ } -> { code = 1; subcode; data = Bytes.empty }
  | Open_error { subcode; _ } -> { code = 2; subcode; data = Bytes.empty }
  | Update_error e -> { code = 3; subcode = Attr.error_subcode e; data = Bytes.empty }
  | Update_malformed _ -> { code = 3; subcode = 1; data = Bytes.empty }

let error_to_string = function
  | Header_error { subcode; reason } ->
    Printf.sprintf "message header error (subcode %d): %s" subcode reason
  | Open_error { subcode; reason } ->
    Printf.sprintf "OPEN message error (subcode %d): %s" subcode reason
  | Update_error e -> Printf.sprintf "UPDATE error: %s" (Attr.error_to_string e)
  | Update_malformed s -> Printf.sprintf "malformed UPDATE: %s" s

(* ---------------- prefix field codec (RFC 4271 §4.3 NLRI) ------------- *)

let encode_prefix w p =
  let len = Prefix.len p in
  Wbuf.u8 w len;
  let nbytes = (len + 7) / 8 in
  let net = Prefix.network p in
  for i = 0 to nbytes - 1 do
    Wbuf.u8 w ((net lsr (24 - (8 * i))) land 0xFF)
  done

let decode_prefix r =
  let len = Rbuf.u8 ~what:"prefix length" r in
  if len > 32 then Error (Update_malformed (Printf.sprintf "prefix length %d > 32" len))
  else begin
    let nbytes = (len + 7) / 8 in
    if Rbuf.remaining r < nbytes then Error (Update_malformed "truncated prefix")
    else begin
      let addr = ref 0 in
      for i = 0 to nbytes - 1 do
        addr := !addr lor (Rbuf.u8 r lsl (24 - (8 * i)))
      done;
      Ok (Prefix.make !addr len)
    end
  end

let rec decode_prefixes r acc =
  if Rbuf.eof r then Ok (List.rev acc)
  else begin
    match decode_prefix r with
    | Ok p -> decode_prefixes r (p :: acc)
    | Error e -> Error e
  end

(* ---------------- capabilities (RFC 5492 / RFC 6793) ------------------ *)

let encode_capability w = function
  | Cap_as4 asn ->
    Wbuf.u8 w 65;
    Wbuf.u8 w 4;
    Wbuf.u32 w asn
  | Cap_mp (afi, safi) ->
    Wbuf.u8 w 1;
    Wbuf.u8 w 4;
    Wbuf.u16 w afi;
    Wbuf.u8 w 0;
    Wbuf.u8 w safi
  | Cap_other (code, data) ->
    Wbuf.u8 w code;
    Wbuf.u8 w (Bytes.length data);
    Wbuf.bytes w data

let decode_capabilities r =
  let rec go acc =
    if Rbuf.eof r then List.rev acc
    else begin
      let code = Rbuf.u8 ~what:"cap code" r in
      let len = Rbuf.u8 ~what:"cap len" r in
      let body = Rbuf.sub r len in
      let cap =
        match (code, len) with
        | 65, 4 -> Cap_as4 (Rbuf.u32 body)
        | 1, 4 ->
          let afi = Rbuf.u16 body in
          let _res = Rbuf.u8 body in
          Cap_mp (afi, Rbuf.u8 body)
        | _, _ -> Cap_other (code, Rbuf.take body len)
      in
      go (cap :: acc)
    end
  in
  go []

(* ---------------- message bodies --------------------------------------- *)

let body_bytes ~as4 t =
  let w = Wbuf.create () in
  (match t with
  | Open o ->
    Wbuf.u8 w o.version;
    Wbuf.u16 w (o.my_as land 0xFFFF);
    Wbuf.u16 w o.hold_time;
    Wbuf.u32 w o.bgp_id;
    let params = Wbuf.create () in
    if o.capabilities <> [] then begin
      let caps = Wbuf.create () in
      List.iter (encode_capability caps) o.capabilities;
      let cap_bytes = Wbuf.contents caps in
      (* one optional parameter of type 2 (capabilities) *)
      Wbuf.u8 params 2;
      Wbuf.u8 params (Bytes.length cap_bytes);
      Wbuf.bytes params cap_bytes
    end;
    let pbytes = Wbuf.contents params in
    Wbuf.u8 w (Bytes.length pbytes);
    Wbuf.bytes w pbytes
  | Update u ->
    let wd = Wbuf.create () in
    List.iter (encode_prefix wd) u.withdrawn;
    let wd_bytes = Wbuf.contents wd in
    Wbuf.u16 w (Bytes.length wd_bytes);
    Wbuf.bytes w wd_bytes;
    let at = Wbuf.create () in
    Attr.encode_list ~as4 at u.attrs;
    let at_bytes = Wbuf.contents at in
    Wbuf.u16 w (Bytes.length at_bytes);
    Wbuf.bytes w at_bytes;
    List.iter (encode_prefix w) u.nlri
  | Notification n ->
    Wbuf.u8 w n.code;
    Wbuf.u8 w n.subcode;
    Wbuf.bytes w n.data
  | Keepalive -> ());
  Wbuf.contents w

let type_code = function
  | Open _ -> 1
  | Update _ -> 2
  | Notification _ -> 3
  | Keepalive -> 4

let encode ?(as4 = true) t =
  let body = body_bytes ~as4 t in
  let w = Wbuf.create ~capacity:(header_len + Bytes.length body) () in
  for _ = 1 to marker_len do
    Wbuf.u8 w 0xFF
  done;
  let total = header_len + Bytes.length body in
  assert (total <= max_len);
  Wbuf.u16 w total;
  Wbuf.u8 w (type_code t);
  Wbuf.bytes w body;
  Wbuf.contents w

let keepalive_bytes = encode Keepalive

let decode_open body =
  try
    let version = Rbuf.u8 ~what:"version" body in
    let my_as = Rbuf.u16 ~what:"my_as" body in
    let hold_time = Rbuf.u16 ~what:"hold_time" body in
    let bgp_id = Rbuf.u32 ~what:"bgp_id" body in
    if version <> 4 then
      Error (Open_error { subcode = 1; reason = Printf.sprintf "version %d" version })
    else if my_as = 0 then Error (Open_error { subcode = 2; reason = "bad peer AS 0" })
    else if bgp_id = 0 then Error (Open_error { subcode = 3; reason = "BGP id 0.0.0.0" })
    else if hold_time <> 0 && hold_time < 3 then
      Error (Open_error { subcode = 6; reason = "hold time 1 or 2" })
    else begin
      let plen = Rbuf.u8 ~what:"opt params len" body in
      if Rbuf.remaining body < plen then
        Error (Open_error { subcode = 0; reason = "truncated optional parameters" })
      else begin
        let params = Rbuf.sub body plen in
        let rec caps acc =
          if Rbuf.eof params then List.rev acc
          else begin
            let ptyp = Rbuf.u8 ~what:"param type" params in
            let pl = Rbuf.u8 ~what:"param len" params in
            let pbody = Rbuf.sub params pl in
            if ptyp = 2 then caps (List.rev_append (decode_capabilities pbody) acc)
            else caps acc  (* ignore non-capability parameters *)
          end
        in
        Ok (Open { version; my_as; hold_time; bgp_id; capabilities = caps [] })
      end
    end
  with Rbuf.Truncated what ->
    Error (Open_error { subcode = 0; reason = "truncated: " ^ what })

let decode_update ~as4 body =
  try
    let wd_len = Rbuf.u16 ~what:"withdrawn length" body in
    if Rbuf.remaining body < wd_len then Error (Update_malformed "withdrawn overruns")
    else begin
      let wd = Rbuf.sub body wd_len in
      match decode_prefixes wd [] with
      | Error e -> Error e
      | Ok withdrawn -> begin
        let at_len = Rbuf.u16 ~what:"attrs length" body in
        if Rbuf.remaining body < at_len then
          Error (Update_malformed "path attributes overrun")
        else begin
          let at = Rbuf.sub body at_len in
          match Attr.decode_list ~as4 at with
          | Error e -> Error (Update_error e)
          | Ok attrs -> begin
            match decode_prefixes body [] with
            | Error e -> Error e
            | Ok nlri ->
              (* mandatory attributes must accompany NLRI *)
              let has c = List.exists (fun a -> Attr.type_code a = c) attrs in
              if nlri <> [] && not (has 1) then
                Error (Update_error (Attr.Missing_wellknown 1))
              else if nlri <> [] && not (has 2) then
                Error (Update_error (Attr.Missing_wellknown 2))
              else if nlri <> [] && not (has 3) then
                Error (Update_error (Attr.Missing_wellknown 3))
              else Ok (Update { withdrawn; attrs; nlri })
          end
        end
      end
    end
  with Rbuf.Truncated what -> Error (Update_malformed ("truncated: " ^ what))

let decode ?(as4 = true) bytes =
  let r = Rbuf.of_bytes bytes in
  try
    if Rbuf.remaining r < header_len then
      Error (Header_error { subcode = 1; reason = "shorter than header" })
    else begin
      let marker_ok = ref true in
      for _ = 1 to marker_len do
        if Rbuf.u8 r <> 0xFF then marker_ok := false
      done;
      if not !marker_ok then
        Error (Header_error { subcode = 1; reason = "marker not all-ones" })
      else begin
        let total = Rbuf.u16 ~what:"length" r in
        let typ = Rbuf.u8 ~what:"type" r in
        if total < header_len || total > max_len then
          Error (Header_error { subcode = 2; reason = Printf.sprintf "bad length %d" total })
        else if total <> Bytes.length bytes then
          Error
            (Header_error
               { subcode = 2;
                 reason =
                   Printf.sprintf "length field %d /= actual %d" total (Bytes.length bytes);
               })
        else begin
          let body = Rbuf.sub r (total - header_len) in
          match typ with
          | 1 -> decode_open body
          | 2 -> decode_update ~as4 body
          | 3 ->
            let code = Rbuf.u8 ~what:"notif code" body in
            let subcode = Rbuf.u8 ~what:"notif subcode" body in
            let data = Rbuf.take body (Rbuf.remaining body) in
            Ok (Notification { code; subcode; data })
          | 4 ->
            if Rbuf.eof body then Ok Keepalive
            else Error (Header_error { subcode = 2; reason = "KEEPALIVE with body" })
          | _ -> Error (Header_error { subcode = 3; reason = Printf.sprintf "type %d" typ })
        end
      end
    end
  with Rbuf.Truncated what -> Error (Header_error { subcode = 2; reason = "truncated: " ^ what })

let decode_exn ?as4 bytes =
  match decode ?as4 bytes with
  | Ok t -> t
  | Error e -> invalid_arg ("Msg.decode_exn: " ^ error_to_string e)

let update_of_route ~prefix attrs = Update { withdrawn = []; attrs; nlri = [ prefix ] }

let withdraw_of prefixes = Update { withdrawn = prefixes; attrs = []; nlri = [] }

let pp ppf = function
  | Open o ->
    Format.fprintf ppf "OPEN v%d as=%d hold=%d id=%a caps=%d" o.version o.my_as o.hold_time
      Ipv4.pp o.bgp_id (List.length o.capabilities)
  | Update u ->
    Format.fprintf ppf "UPDATE withdrawn=[%s] nlri=[%s] attrs=[%s]"
      (String.concat " " (List.map Prefix.to_string u.withdrawn))
      (String.concat " " (List.map Prefix.to_string u.nlri))
      (String.concat "; " (List.map Attr.to_string u.attrs))
  | Notification n -> Format.fprintf ppf "NOTIFICATION %d/%d" n.code n.subcode
  | Keepalive -> Format.fprintf ppf "KEEPALIVE"

let to_string t = Format.asprintf "%a" pp t
