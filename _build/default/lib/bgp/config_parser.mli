(** Recursive-descent parser for router configurations.

    Grammar (see README for the full reference):
    {v
    config     := item*
    item       := "router" "id" IP ";"
                | "local" "as" INT ";"
                | "filter" NAME "{" stmt* "}"
                | "protocol" "static" "{" ("route" PREFIX "via" IP ";")* "}"
                | "protocol" "bgp" NAME "{" peer-item* "}"
                | "anycast" "[" prefix-pattern ("," prefix-pattern)* "]" ";"
    peer-item  := "neighbor" IP "as" INT ";"
                | ("import"|"export") ("all"|"none"|"filter" NAME) ";"
                | "hold" "time" INT ";"
                | "keepalive" "time" INT ";"
                | "connect" "retry" "time" INT ";"
    stmt       := "if" cond "then" block ("else" block)?
                | "accept" ";" | "reject" ";"
                | "bgp_local_pref" "=" term ";" | "bgp_med" "=" term ";"
                | "bgp_community" "." ("add"|"delete") "(" INT ":" INT ")" ";"
                | "bgp_path" "." "prepend" "(" INT ")" ";"
    block      := stmt | "{" stmt* "}"
    cond       := or-expr with atoms:  term CMP term
                | "net" "~" "[" pattern ("," pattern)* "]"
                | "bgp_path" "~" INT | "bgp_community" "~" INT ":" INT
                | "true" | "false" | "(" cond ")" | "!" cond
    pattern    := PREFIX ("+" | "-" | "{" INT "," INT "}")?
    term       := INT | "net" "." "len" | "bgp_local_pref" | "bgp_med"
                | "bgp_origin" | "source_as"
                | "bgp_path" "." ("len"|"first"|"last")
    v} *)

exception Parse_error of { line : int; msg : string }

val parse : string -> Config_types.t
(** Parse a configuration text.
    @raise Parse_error (or {!Config_lexer.Lex_error}) on bad input. *)

val parse_file : string -> Config_types.t
(** @raise Sys_error if unreadable. *)

val parse_filter : name:string -> string -> Filter.t
(** Parse just a filter body (the text between the braces) — convenient in
    tests and examples. *)
