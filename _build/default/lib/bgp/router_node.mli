(** Adapter embedding a {!Router} in the discrete-event {!Dice_sim}
    network: simulated transport (connection handshake), timer management,
    and execution of router outputs. This plays the role of the OS and
    virtual interfaces in the paper's testbed. *)

open Dice_inet

type t

val attach : ?auto_restart:bool -> Dice_sim.Network.t -> name:string -> Router.t -> t
(** Create the node; peers must then be bound with {!bind_peer}.
    [auto_restart] (default [true]) re-enters the FSM 5 s after any
    session goes down, as real daemons do after an idle-hold delay. *)

val node_id : t -> Dice_sim.Network.node_id
val router : t -> Router.t
val network : t -> Dice_sim.Network.t

val bind_peer : t -> neighbor:Ipv4.t -> node:Dice_sim.Network.node_id -> unit
(** Associate a configured neighbor address with the simulated node that
    owns it. *)

val start : t -> unit
(** ManualStart all sessions (schedules connection attempts). *)

val on_output : t -> (Router.output -> unit) -> unit
(** Observe every router output (tests and checkers); called in addition
    to normal execution. *)

val on_update : t -> (peer:Ipv4.t -> Msg.update -> unit) -> unit
(** Observe every received UPDATE before the router processes it — the
    tap an online tester (DiCE) uses to collect exploration seeds. *)

val sessions_established : t -> int
(** Session_up events seen so far. *)

val frame_bgp : Msg.t -> bytes
(** Encode a BGP message with the simulated-transport framing this
    adapter expects — for injecting traffic (e.g. trace replay) straight
    from a simulated node. *)
