lib/bgp/filter.mli: Community Dice_inet Format Prefix
