lib/bgp/msg.ml: Attr Bytes Dice_inet Dice_wire Format Ipv4 List Prefix Printf String
