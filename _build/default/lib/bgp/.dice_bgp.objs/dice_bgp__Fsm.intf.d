lib/bgp/fsm.mli: Format Msg
