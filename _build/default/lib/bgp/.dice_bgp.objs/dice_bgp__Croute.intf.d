lib/bgp/croute.mli: Asn Attr Community Cval Dice_concolic Dice_inet Format Ipv4 Prefix Route
