lib/bgp/msg.mli: Attr Dice_inet Format Ipv4 Prefix
