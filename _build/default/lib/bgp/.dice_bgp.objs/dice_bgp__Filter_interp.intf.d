lib/bgp/filter_interp.mli: Config_types Croute Cval Dice_concolic Engine Filter
