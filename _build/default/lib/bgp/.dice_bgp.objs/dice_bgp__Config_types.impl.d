lib/bgp/config_types.ml: Dice_inet Filter Format Ipv4 List Prefix
