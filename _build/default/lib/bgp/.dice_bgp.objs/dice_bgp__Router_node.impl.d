lib/bgp/router_node.ml: Bytes Char Dice_inet Dice_sim Fsm Hashtbl Ipv4 List Msg Router
