lib/bgp/config_lexer.ml: Dice_inet Ipv4 List Prefix Printf String
