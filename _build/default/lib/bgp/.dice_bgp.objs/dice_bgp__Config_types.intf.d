lib/bgp/config_types.mli: Dice_inet Filter Format Ipv4 Prefix
