lib/bgp/config_parser.ml: Array Community Config_lexer Config_types Dice_inet Filter List Option Prefix Printf
