lib/bgp/route.mli: Asn Attr Community Dice_inet Format Ipv4
