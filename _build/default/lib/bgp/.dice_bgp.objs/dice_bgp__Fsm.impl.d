lib/bgp/fsm.ml: Bytes Format Msg Printf
