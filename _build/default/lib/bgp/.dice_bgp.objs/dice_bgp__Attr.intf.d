lib/bgp/attr.mli: Asn Community Dice_inet Dice_wire Format Ipv4
