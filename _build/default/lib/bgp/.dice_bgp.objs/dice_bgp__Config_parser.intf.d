lib/bgp/config_parser.mli: Config_types Filter
