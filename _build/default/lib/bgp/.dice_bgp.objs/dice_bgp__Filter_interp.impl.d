lib/bgp/filter_interp.ml: Asn Config_types Croute Cval Dice_concolic Dice_inet Engine Filter Int64 List Option Prefix Printf Sym
