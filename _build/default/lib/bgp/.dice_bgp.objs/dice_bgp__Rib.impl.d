lib/bgp/rib.ml: Dice_inet Prefix_trie Route
