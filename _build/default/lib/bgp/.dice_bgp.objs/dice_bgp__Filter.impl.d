lib/bgp/filter.ml: Community Dice_inet Format Hashtbl Ipv4 List Prefix Printf String
