lib/bgp/attr.ml: Asn Bytes Community Dice_inet Dice_wire Format Hashtbl Ipv4 List Printf Result String
