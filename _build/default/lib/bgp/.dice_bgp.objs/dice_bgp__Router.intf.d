lib/bgp/router.mli: Config_types Croute Dice_concolic Dice_inet Engine Fsm Ipv4 Msg Prefix Rib Route
