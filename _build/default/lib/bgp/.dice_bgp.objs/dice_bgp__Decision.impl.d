lib/bgp/decision.ml: Asn Attr Bool Dice_inet Int Ipv4 List Printf Route
