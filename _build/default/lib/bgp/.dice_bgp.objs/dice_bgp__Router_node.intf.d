lib/bgp/router_node.mli: Dice_inet Dice_sim Ipv4 Msg Router
