lib/bgp/route.ml: Asn Attr Community Dice_inet Format Int Ipv4 List
