lib/bgp/rib.mli: Dice_inet Ipv4 Prefix Route
