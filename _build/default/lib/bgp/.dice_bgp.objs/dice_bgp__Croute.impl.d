lib/bgp/croute.ml: Asn Attr Community Cval Dice_concolic Dice_inet Format Int64 Ipv4 List Option Prefix Route
