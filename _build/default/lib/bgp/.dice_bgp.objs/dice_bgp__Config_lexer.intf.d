lib/bgp/config_lexer.mli: Dice_inet Ipv4 Prefix
