(** The BGP decision process (RFC 4271 §9.1): selecting the best route
    among the candidates for a prefix.

    Preference order implemented:
    + highest LOCAL_PREF (missing treated as the configured default),
    + locally-originated (static) over learned,
    + shortest AS_PATH,
    + lowest ORIGIN (IGP < EGP < INCOMPLETE),
    + lowest MED, compared only between routes from the same neighbor AS
      unless [always_compare_med],
    + eBGP over iBGP,
    + lowest peer BGP identifier,
    + lowest peer address. *)

type config = {
  default_local_pref : int;  (** applied when LOCAL_PREF is absent; 100 *)
  always_compare_med : bool;  (** compare MED across neighbor ASes; false *)
  missing_med_worst : bool;
      (** missing MED treated as worst (2^32-1) rather than best (0); false *)
}

val default_config : config

type candidate = Route.t * Route.src

val compare : ?config:config -> candidate -> candidate -> int
(** Negative when the first candidate is preferred. Total order (the final
    peer-address tie-break makes distinct sources comparable). *)

val best : ?config:config -> candidate list -> candidate option
(** The most preferred candidate; [None] on an empty list. *)

val explain : ?config:config -> candidate -> candidate -> string
(** Which rule decided between the two — for operator-facing reports. *)
