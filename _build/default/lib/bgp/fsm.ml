type state =
  | Idle
  | Connect
  | Active
  | Open_sent
  | Open_confirm
  | Established

let state_to_string = function
  | Idle -> "Idle"
  | Connect -> "Connect"
  | Active -> "Active"
  | Open_sent -> "OpenSent"
  | Open_confirm -> "OpenConfirm"
  | Established -> "Established"

let pp_state ppf s = Format.pp_print_string ppf (state_to_string s)

type timer =
  | Connect_retry
  | Hold
  | Keepalive_timer

let timer_to_string = function
  | Connect_retry -> "connect-retry"
  | Hold -> "hold"
  | Keepalive_timer -> "keepalive"

type event =
  | Manual_start
  | Manual_stop
  | Tcp_connected
  | Tcp_failed
  | Recv_open of Msg.open_msg
  | Recv_keepalive
  | Recv_update of Msg.update
  | Recv_notification of Msg.notification
  | Timer_expired of timer

type action =
  | Send_open
  | Send_keepalive
  | Send_notification of Msg.notification
  | Start_timer of timer
  | Stop_timer of timer
  | Initiate_connect
  | Drop_connection
  | Deliver_update of Msg.update
  | Session_established
  | Session_down of string

let initial = Idle

let fsm_error = { Msg.code = 5; subcode = 0; data = Bytes.empty }

let all_stop = [ Stop_timer Connect_retry; Stop_timer Hold; Stop_timer Keepalive_timer ]

(* Tear the session down and return to Idle. *)
let reset reason extra = (Idle, extra @ all_stop @ [ Drop_connection; Session_down reason ])

let step state event =
  match (state, event) with
  (* ----- Idle ----- *)
  | Idle, Manual_start -> (Connect, [ Start_timer Connect_retry; Initiate_connect ])
  | Idle, (Manual_stop | Tcp_failed | Timer_expired _ | Recv_notification _) -> (Idle, [])
  | Idle, (Tcp_connected | Recv_open _ | Recv_keepalive | Recv_update _) -> (Idle, [])
  (* ----- Connect ----- *)
  | Connect, Tcp_connected -> (Open_sent, [ Stop_timer Connect_retry; Send_open; Start_timer Hold ])
  | Connect, (Tcp_failed | Timer_expired Connect_retry) ->
    (Active, [ Start_timer Connect_retry ])
  | Connect, Manual_stop -> reset "manual stop" []
  | Connect, (Recv_open _ | Recv_keepalive | Recv_update _ | Recv_notification _) ->
    reset "message in Connect" [ Send_notification fsm_error ]
  | Connect, (Manual_start | Timer_expired (Hold | Keepalive_timer)) -> (Connect, [])
  (* ----- Active ----- *)
  | Active, Timer_expired Connect_retry -> (Connect, [ Start_timer Connect_retry; Initiate_connect ])
  | Active, Tcp_connected -> (Open_sent, [ Stop_timer Connect_retry; Send_open; Start_timer Hold ])
  | Active, Tcp_failed -> (Active, [ Start_timer Connect_retry ])
  | Active, Manual_stop -> reset "manual stop" []
  | Active, (Recv_open _ | Recv_keepalive | Recv_update _ | Recv_notification _) ->
    reset "message in Active" [ Send_notification fsm_error ]
  | Active, (Manual_start | Timer_expired (Hold | Keepalive_timer)) -> (Active, [])
  (* ----- OpenSent ----- *)
  | Open_sent, Recv_open _ ->
    (Open_confirm, [ Send_keepalive; Start_timer Keepalive_timer; Start_timer Hold ])
  | Open_sent, Tcp_failed -> (Active, [ Start_timer Connect_retry ])
  | Open_sent, Timer_expired Hold ->
    reset "hold timer expired"
      [ Send_notification { Msg.code = 4; subcode = 0; data = Bytes.empty } ]
  | Open_sent, Manual_stop -> reset "manual stop" []
  | Open_sent, Recv_notification n ->
    reset (Printf.sprintf "notification %d/%d" n.Msg.code n.Msg.subcode) []
  | Open_sent, (Recv_keepalive | Recv_update _) ->
    reset "unexpected message in OpenSent" [ Send_notification fsm_error ]
  | Open_sent, (Manual_start | Tcp_connected | Timer_expired (Connect_retry | Keepalive_timer))
    ->
    (Open_sent, [])
  (* ----- OpenConfirm ----- *)
  | Open_confirm, Recv_keepalive -> (Established, [ Start_timer Hold; Session_established ])
  | Open_confirm, Timer_expired Keepalive_timer ->
    (Open_confirm, [ Send_keepalive; Start_timer Keepalive_timer ])
  | Open_confirm, Timer_expired Hold ->
    reset "hold timer expired"
      [ Send_notification { Msg.code = 4; subcode = 0; data = Bytes.empty } ]
  | Open_confirm, Tcp_failed -> reset "transport failed" []
  | Open_confirm, Manual_stop -> reset "manual stop" []
  | Open_confirm, Recv_notification n ->
    reset (Printf.sprintf "notification %d/%d" n.Msg.code n.Msg.subcode) []
  | Open_confirm, (Recv_open _ | Recv_update _) ->
    reset "unexpected message in OpenConfirm" [ Send_notification fsm_error ]
  | Open_confirm, (Manual_start | Tcp_connected | Timer_expired Connect_retry) ->
    (Open_confirm, [])
  (* ----- Established ----- *)
  | Established, Recv_update u -> (Established, [ Start_timer Hold; Deliver_update u ])
  | Established, Recv_keepalive -> (Established, [ Start_timer Hold ])
  | Established, Timer_expired Keepalive_timer ->
    (Established, [ Send_keepalive; Start_timer Keepalive_timer ])
  | Established, Timer_expired Hold ->
    reset "hold timer expired"
      [ Send_notification { Msg.code = 4; subcode = 0; data = Bytes.empty } ]
  | Established, Recv_notification n ->
    reset (Printf.sprintf "notification %d/%d" n.Msg.code n.Msg.subcode) []
  | Established, Tcp_failed -> reset "transport failed" []
  | Established, Manual_stop ->
    reset "manual stop"
      [ Send_notification { Msg.code = 6; subcode = 2; data = Bytes.empty } ]
  | Established, Recv_open _ ->
    reset "OPEN in Established" [ Send_notification fsm_error ]
  | Established, (Manual_start | Tcp_connected | Timer_expired Connect_retry) ->
    (Established, [])
