(** BGP path attributes (RFC 4271 §4.3, §5).

    Wire format: flags (1) | type (1) | length (1 or 2) | value. Flag bits:
    0x80 optional, 0x40 transitive, 0x20 partial, 0x10 extended length. *)

open Dice_inet

type origin =
  | Igp
  | Egp
  | Incomplete

val origin_code : origin -> int
(** 0, 1, 2 — also the decision-process preference order (lower wins). *)

val origin_of_code : int -> origin option
val origin_to_string : origin -> string

type unknown = { flags : int; typ : int; data : bytes }
(** An unrecognized optional attribute, carried for transit (RFC 4271
    §5: unknown transitive attributes are forwarded with Partial set). *)

type t =
  | Origin of origin
  | As_path of Asn.Path.t
  | Next_hop of Ipv4.t
  | Med of int
  | Local_pref of int
  | Atomic_aggregate
  | Aggregator of int * Ipv4.t
  | Communities of Community.t list
  | Unknown of unknown

val type_code : t -> int

(** Decode errors map to UPDATE Message Error subcodes (RFC 4271 §6.3). *)
type error =
  | Malformed_attribute_list  (** subcode 1 *)
  | Unrecognized_wellknown of int  (** subcode 2 *)
  | Missing_wellknown of int  (** subcode 3 *)
  | Attribute_flags_error of int  (** subcode 4 *)
  | Attribute_length_error of int  (** subcode 5 *)
  | Invalid_origin  (** subcode 6 *)
  | Invalid_next_hop  (** subcode 8 *)
  | Optional_attribute_error of int  (** subcode 9 *)
  | Malformed_as_path  (** subcode 11 *)
  | Duplicate_attribute of int  (** subcode 1, per RFC 7606 treated as list error *)

val error_subcode : error -> int
val error_to_string : error -> string

val encode : as4:bool -> Dice_wire.Wbuf.t -> t -> unit
(** Append one attribute. [as4] selects 4-byte AS number encoding in
    AS_PATH and AGGREGATOR (the AS4 capability of the session). *)

val encode_list : as4:bool -> Dice_wire.Wbuf.t -> t list -> unit

val decode_list : as4:bool -> Dice_wire.Rbuf.t -> (t list, error) result
(** Decode the whole path-attribute region, validating flags, lengths,
    duplicates, ORIGIN values and AS_PATH structure. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
