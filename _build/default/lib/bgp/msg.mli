(** BGP-4 messages and their wire format (RFC 4271 §4).

    Every message starts with a 19-byte header: a 16-byte all-ones marker,
    a 2-byte total length (19..4096) and a 1-byte type. *)

open Dice_inet

val marker_len : int
val header_len : int
val max_len : int

type capability =
  | Cap_as4 of int  (** 4-octet AS numbers (RFC 6793), carrying the real ASN *)
  | Cap_mp of int * int  (** multiprotocol AFI/SAFI (decoded, unused here) *)
  | Cap_other of int * bytes

type open_msg = {
  version : int;  (** must be 4 *)
  my_as : int;  (** 16-bit field; AS_TRANS (23456) when using Cap_as4 *)
  hold_time : int;  (** seconds; 0 or >= 3 *)
  bgp_id : Ipv4.t;
  capabilities : capability list;
}

type update = {
  withdrawn : Prefix.t list;
  attrs : Attr.t list;
  nlri : Prefix.t list;
}

type notification = { code : int; subcode : int; data : bytes }

type t =
  | Open of open_msg
  | Update of update
  | Notification of notification
  | Keepalive

(** Decode errors; each maps to the NOTIFICATION (code, subcode) the
    receiver must send (RFC 4271 §6). *)
type error =
  | Header_error of { subcode : int; reason : string }  (** code 1 *)
  | Open_error of { subcode : int; reason : string }  (** code 2 *)
  | Update_error of Attr.error  (** code 3 *)
  | Update_malformed of string  (** code 3, subcode 1 *)

val error_notification : error -> notification
val error_to_string : error -> string

val encode : ?as4:bool -> t -> bytes
(** Serialize with header. [as4] (default [true]) controls AS number width
    in UPDATE path attributes, as negotiated on the session. *)

val decode : ?as4:bool -> bytes -> (t, error) result
(** Parse one whole message (header included), validating marker, length
    bounds, type, and all per-type field constraints. *)

val decode_exn : ?as4:bool -> bytes -> t
(** @raise Invalid_argument on any decode error. *)

val keepalive_bytes : bytes
(** The canonical 19-byte KEEPALIVE. *)

val update_of_route : prefix:Prefix.t -> Attr.t list -> t
(** Convenience: an UPDATE announcing one prefix. *)

val withdraw_of : Prefix.t list -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
