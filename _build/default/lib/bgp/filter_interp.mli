(** Concolic filter interpreter.

    Evaluates a {!Filter.t} over a {!Croute.t} under an
    {!Dice_concolic.Engine.ctx}. Every [if] in the policy is a branch site:
    with a recording context, conditions over symbolic route fields become
    path constraints — so exploration drives execution through both arms of
    every configured filter rule, which is precisely how DiCE discovers
    which announcements a mis-filtered policy lets through. *)

open Dice_concolic

type verdict =
  | Accepted of Croute.t  (** possibly modified by attribute assignments *)
  | Rejected

val eval_cond : Engine.ctx -> source_as:int -> Filter.cond -> Croute.t -> Cval.t
(** Width-1 concolic truth value of a condition (no branch recorded). *)

val run :
  Engine.ctx -> source_as:int -> local_as:int -> Filter.t -> Croute.t -> verdict
(** Execute the filter body. [source_as] is the session the route arrived
    on; [local_as] is the AS evaluating the policy (used by
    [bgp_path.prepend]). A body that falls off the end rejects (BIRD
    semantics: the filter must decide). *)

val run_policy :
  Engine.ctx ->
  source_as:int ->
  local_as:int ->
  Config_types.policy ->
  Croute.t ->
  verdict
(** Apply a peer policy: [All] accepts unchanged, [Nothing] rejects,
    [Use_filter f] runs the filter. *)
