open Dice_inet

type t = {
  origin : Attr.origin;
  as_path : Asn.Path.t;
  next_hop : Ipv4.t;
  med : int option;
  local_pref : int option;
  communities : Community.t list;
  atomic_aggregate : bool;
  aggregator : (int * Ipv4.t) option;
  unknowns : Attr.unknown list;
}

let make ?(origin = Attr.Igp) ?(med = None) ?(local_pref = None) ?(communities = [])
    ?(atomic_aggregate = false) ?(aggregator = None) ?(unknowns = []) ~as_path ~next_hop () =
  {
    origin;
    as_path;
    next_hop;
    med;
    local_pref;
    communities;
    atomic_aggregate;
    aggregator;
    unknowns;
  }

let of_attrs attrs =
  let origin = ref None
  and as_path = ref None
  and next_hop = ref None
  and med = ref None
  and local_pref = ref None
  and communities = ref []
  and atomic = ref false
  and aggregator = ref None
  and unknowns = ref [] in
  List.iter
    (fun a ->
      match a with
      | Attr.Origin o -> origin := Some o
      | Attr.As_path p -> as_path := Some p
      | Attr.Next_hop h -> next_hop := Some h
      | Attr.Med v -> med := Some v
      | Attr.Local_pref v -> local_pref := Some v
      | Attr.Communities cs -> communities := cs
      | Attr.Atomic_aggregate -> atomic := true
      | Attr.Aggregator (asn, id) -> aggregator := Some (asn, id)
      | Attr.Unknown u -> unknowns := u :: !unknowns)
    attrs;
  match (!origin, !as_path, !next_hop) with
  | None, _, _ -> Error (Attr.Missing_wellknown 1)
  | _, None, _ -> Error (Attr.Missing_wellknown 2)
  | _, _, None -> Error (Attr.Missing_wellknown 3)
  | Some origin, Some as_path, Some next_hop ->
    Ok
      {
        origin;
        as_path;
        next_hop;
        med = !med;
        local_pref = !local_pref;
        communities = !communities;
        atomic_aggregate = !atomic;
        aggregator = !aggregator;
        unknowns = List.rev !unknowns;
      }

let to_attrs t =
  let base =
    [ Attr.Origin t.origin; Attr.As_path t.as_path; Attr.Next_hop t.next_hop ]
  in
  let opt =
    List.concat
      [ (match t.med with Some v -> [ Attr.Med v ] | None -> []);
        (match t.local_pref with Some v -> [ Attr.Local_pref v ] | None -> []);
        (if t.atomic_aggregate then [ Attr.Atomic_aggregate ] else []);
        (match t.aggregator with Some (a, i) -> [ Attr.Aggregator (a, i) ] | None -> []);
        (if t.communities = [] then [] else [ Attr.Communities t.communities ]);
        List.map (fun u -> Attr.Unknown u) t.unknowns;
      ]
  in
  List.sort (fun a b -> Int.compare (Attr.type_code a) (Attr.type_code b)) (base @ opt)

let origin_as t = Asn.Path.origin_as t.as_path
let neighbor_as t = Asn.Path.first_as t.as_path

let has_community t c = List.mem c t.communities

let add_community t c =
  if has_community t c then t else { t with communities = t.communities @ [ c ] }

let remove_community t c =
  { t with communities = List.filter (fun x -> x <> c) t.communities }

let prepend_as t asn = { t with as_path = Asn.Path.prepend asn t.as_path }

let equal (a : t) (b : t) = a = b

let pp ppf t =
  Format.fprintf ppf "{path=[%a] nh=%a origin=%s lp=%s med=%s}" Asn.Path.pp t.as_path
    Ipv4.pp t.next_hop
    (Attr.origin_to_string t.origin)
    (match t.local_pref with Some v -> string_of_int v | None -> "-")
    (match t.med with Some v -> string_of_int v | None -> "-")

type src = {
  peer_addr : Ipv4.t;
  peer_asn : int;
  peer_bgp_id : Ipv4.t;
  ebgp : bool;
}

let static_src = { peer_addr = 0; peer_asn = 0; peer_bgp_id = 0; ebgp = false }

let pp_src ppf s =
  if s = static_src then Format.fprintf ppf "static"
  else
    Format.fprintf ppf "%a(%a,%s)" Ipv4.pp s.peer_addr Asn.pp s.peer_asn
      (if s.ebgp then "eBGP" else "iBGP")
