(** The routing-policy (filter) language — a BIRD-style little language.

    This is the "interpreted configuration" dimension of the paper's
    exploration: because the filter interpreter runs over concolic values,
    recorded constraints span both the router's code and the operator's
    configured policy (paper §3.2), including the "if" statements inside
    configured filters.

    Concrete syntax (parsed by {!Config_parser}):
    {v
    filter customer_in {
      if net ~ [ 203.0.113.0/24+, 198.51.100.0/24{24,28} ] then accept;
      if bgp_path.len > 10 then reject;
      bgp_local_pref = 120;
      accept;
    }
    v} *)

open Dice_inet

type prefix_pattern = { base : Prefix.t; low : int; high : int }
(** Matches prefix [P] iff [low <= len P <= high] and [P]'s first
    [min (len base) (len P)] bits agree with [base]. Written
    [a.b.c.d/l] (exact), [.../l+] (l..32), [.../l-] (0..l) or
    [.../l{lo,hi}]. *)

val pattern_matches : prefix_pattern -> Prefix.t -> bool
(** Concrete-side semantics (the interpreter mirrors it concolically). *)

val pp_pattern : Format.formatter -> prefix_pattern -> unit

type cmpop =
  | Ceq
  | Cne
  | Clt
  | Cle
  | Cgt
  | Cge

(** Integer-valued route terms. *)
type term =
  | Int_lit of int
  | Net_len  (** [net.len] *)
  | Local_pref_t  (** [bgp_local_pref] *)
  | Med_t  (** [bgp_med] *)
  | Origin_t  (** [bgp_origin]: 0 IGP, 1 EGP, 2 INCOMPLETE *)
  | Path_len  (** [bgp_path.len] *)
  | Neighbor_as  (** [bgp_path.first] *)
  | Origin_as  (** [bgp_path.last] *)
  | Source_as  (** ASN of the session the route arrived on *)

type cond =
  | True
  | False
  | Cmp of cmpop * term * term
  | Match_net of prefix_pattern list  (** [net ~ \[ ... \]] *)
  | Path_has of int  (** [bgp_path ~ asn] *)
  | Has_community of Community.t  (** [bgp_community ~ a:b] *)
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type stmt =
  | If of { site : string; cond : cond; then_ : stmt list; else_ : stmt list }
      (** [site] names the static branch location for concolic coverage. *)
  | Accept
  | Reject
  | Set_local_pref of term
  | Set_med of term
  | Add_community of Community.t
  | Delete_community of Community.t
  | Prepend of int  (** prepend the local AS [n] extra times on export *)

type t = { name : string; body : stmt list }

val mk_if : filter_name:string -> cond -> stmt list -> stmt list -> stmt
(** Build an [If] with a fresh stable site name
    ["filter:<name>:if<k>"]. *)

val accept_all : string -> t
val reject_all : string -> t

val pp : Format.formatter -> t -> unit
