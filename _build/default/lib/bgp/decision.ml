open Dice_inet

type config = {
  default_local_pref : int;
  always_compare_med : bool;
  missing_med_worst : bool;
}

let default_config =
  { default_local_pref = 100; always_compare_med = false; missing_med_worst = false }

type candidate = Route.t * Route.src

(* Each rule returns a signed comparison; 0 falls through to the next. *)
let rules config =
  let local_pref (r : Route.t) =
    match r.local_pref with
    | Some v -> v
    | None -> config.default_local_pref
  in
  let med (r : Route.t) =
    match r.med with
    | Some v -> v
    | None -> if config.missing_med_worst then 0xFFFFFFFF else 0
  in
  [
    ( "local-pref",
      fun (ra, _) (rb, _) -> Int.compare (local_pref rb) (local_pref ra) );
    ( "local-origin",
      fun ((_, sa) : candidate) (_, sb) ->
        Bool.compare (sb = Route.static_src) (sa = Route.static_src) );
    ( "as-path-length",
      fun (ra, _) (rb, _) ->
        Int.compare (Asn.Path.length ra.Route.as_path) (Asn.Path.length rb.Route.as_path) );
    ( "origin",
      fun (ra, _) (rb, _) ->
        Int.compare (Attr.origin_code ra.Route.origin) (Attr.origin_code rb.Route.origin) );
    ( "med",
      fun (ra, _) (rb, _) ->
        let comparable =
          config.always_compare_med
          || (match (Route.neighbor_as ra, Route.neighbor_as rb) with
             | Some a, Some b -> a = b
             | _, _ -> false)
        in
        if comparable then Int.compare (med ra) (med rb) else 0 );
    ("ebgp-over-ibgp", fun (_, sa) (_, sb) -> Bool.compare sb.Route.ebgp sa.Route.ebgp);
    ( "bgp-id",
      fun (_, sa) (_, sb) -> Ipv4.compare sa.Route.peer_bgp_id sb.Route.peer_bgp_id );
    ("peer-address", fun (_, sa) (_, sb) -> Ipv4.compare sa.Route.peer_addr sb.Route.peer_addr);
  ]

let compare ?(config = default_config) a b =
  let rec go = function
    | [] -> 0
    | (_, rule) :: rest ->
      let c = rule a b in
      if c <> 0 then c else go rest
  in
  go (rules config)

let best ?config candidates =
  match candidates with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left (fun acc c -> if compare ?config c acc < 0 then c else acc) first rest)

let explain ?(config = default_config) a b =
  let rec go = function
    | [] -> "identical preference"
    | (name, rule) :: rest ->
      let c = rule a b in
      if c < 0 then Printf.sprintf "first wins on %s" name
      else if c > 0 then Printf.sprintf "second wins on %s" name
      else go rest
  in
  go (rules config)
