open Dice_inet
module Rng = Dice_util.Rng

type entry = {
  prefix : Prefix.t;
  as_path : int list;
  origin : Dice_bgp.Attr.origin;
  med : int option;
}

type event =
  | Announce of { time : float; entry : entry }
  | Withdraw of { time : float; prefix : Prefix.t }

let event_time = function
  | Announce { time; _ } -> time
  | Withdraw { time; _ } -> time

type t = {
  collector_as : int;
  dump : entry array;
  events : event array;
  duration : float;
}

type params = {
  seed : int64;
  n_prefixes : int;
  n_ases : int;
  collector_as : int;
  duration : float;
  update_rate : float;
  withdraw_fraction : float;
}

let default_params =
  {
    seed = 42L;
    n_prefixes = 20_000;
    n_ases = 600;
    collector_as = 64700;
    duration = 900.0;
    update_rate = 0.3;
    withdraw_fraction = 0.2;
  }

(* Prefix-length distribution roughly matching a 2010-era global table:
   dominated by /24 with mass at /16..../22. *)
let len_table =
  [| (8, 1); (9, 1); (10, 1); (11, 2); (12, 3); (13, 4); (14, 6); (15, 7); (16, 14);
     (17, 7); (18, 9); (19, 13); (20, 15); (21, 13); (22, 18); (23, 15); (24, 54) |]

let len_total = Array.fold_left (fun acc (_, w) -> acc + w) 0 len_table

let sample_len rng =
  let target = Rng.int rng len_total in
  let rec go i acc =
    let len, w = len_table.(i) in
    let acc = acc + w in
    if acc > target then len else go (i + 1) acc
  in
  go 0 0

(* Random globally-routable address: avoid 0/8, 10/8, 127/8, 224/3. *)
let sample_addr rng =
  let rec go () =
    let a = Rng.int_in rng 1 223 in
    if a = 10 || a = 127 then go ()
    else
      Ipv4.of_octets a (Rng.int rng 256) (Rng.int rng 256) (Rng.int rng 256)
  in
  go ()

let sample_origin rng =
  let r = Rng.int rng 100 in
  if r < 75 then Dice_bgp.Attr.Igp
  else if r < 80 then Dice_bgp.Attr.Egp
  else Dice_bgp.Attr.Incomplete

let generate p =
  if p.n_prefixes < 1 then invalid_arg "Gen.generate: need at least one prefix";
  let rng = Rng.create p.seed in
  let graph_rng = Rng.split rng in
  let graph = Asgraph.generate ~rng:graph_rng ~n_ases:p.n_ases () in
  let seen : (Prefix.t, unit) Hashtbl.t = Hashtbl.create (2 * p.n_prefixes) in
  let mk_entry prefix =
    let origin_as = Asgraph.random_as graph ~rng in
    let as_path =
      Asgraph.path_from_origin graph ~rng ~collector_as:p.collector_as ~origin:origin_as
    in
    {
      prefix;
      as_path;
      origin = sample_origin rng;
      med = (if Rng.chance rng 0.25 then Some (Rng.int rng 200) else None);
    }
  in
  let dump =
    Array.init p.n_prefixes (fun _ ->
        let rec fresh guard =
          let prefix = Prefix.make (sample_addr rng) (sample_len rng) in
          if Hashtbl.mem seen prefix && guard > 0 then fresh (guard - 1)
          else begin
            Hashtbl.replace seen prefix ();
            prefix
          end
        in
        mk_entry (fresh 64))
  in
  Array.sort (fun a b -> Prefix.compare a.prefix b.prefix) dump;
  (* update tail: churn over dump prefixes *)
  let events = ref [] in
  let time = ref 0.0 in
  let withdrawn : (Prefix.t, unit) Hashtbl.t = Hashtbl.create 64 in
  while !time < p.duration do
    time := !time +. Rng.exponential rng p.update_rate;
    if !time < p.duration then begin
      let e = dump.(Rng.int rng (Array.length dump)) in
      if Hashtbl.mem withdrawn e.prefix then begin
        (* re-announce a previously withdrawn prefix *)
        Hashtbl.remove withdrawn e.prefix;
        events := Announce { time = !time; entry = mk_entry e.prefix } :: !events
      end
      else if Rng.chance rng p.withdraw_fraction then begin
        Hashtbl.replace withdrawn e.prefix ();
        events := Withdraw { time = !time; prefix = e.prefix } :: !events
      end
      else
        (* path churn: same prefix, new path *)
        events := Announce { time = !time; entry = mk_entry e.prefix } :: !events
    end
  done;
  {
    collector_as = p.collector_as;
    dump;
    events = Array.of_list (List.rev !events);
    duration = p.duration;
  }

let origin_of t prefix =
  let found = ref None in
  Array.iter
    (fun e ->
      if Prefix.equal e.prefix prefix then
        found :=
          (match List.rev e.as_path with
          | last :: _ -> Some last
          | [] -> None))
    t.dump;
  !found

let route_attrs ~next_hop (e : entry) =
  let open Dice_bgp in
  let base =
    [ Attr.Origin e.origin;
      Attr.As_path [ Dice_inet.Asn.Path.Seq e.as_path ];
      Attr.Next_hop next_hop ]
  in
  match e.med with
  | Some m -> base @ [ Attr.Med m ]
  | None -> base

let to_updates t ~peer_as ~next_hop =
  ignore peer_as;
  Array.to_list
    (Array.map
       (fun e ->
         Dice_bgp.Msg.Update
           { withdrawn = []; attrs = route_attrs ~next_hop e; nlri = [ e.prefix ] })
       t.dump)

let event_update ~entry_next_hop = function
  | Announce { entry; _ } ->
    Dice_bgp.Msg.Update
      { withdrawn = []; attrs = route_attrs ~next_hop:entry_next_hop entry; nlri = [ entry.prefix ] }
  | Withdraw { prefix; _ } ->
    Dice_bgp.Msg.Update { withdrawn = [ prefix ]; attrs = []; nlri = [] }
