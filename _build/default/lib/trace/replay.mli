(** Trace replay into a router.

    Two modes:

    - {!feed_dump} / {!feed_events}: direct synchronous replay into a
      router's message handler — what the throughput experiments time
      (paper §4.1 measures "updates the DiCE-enabled router handles per
      second" during replay);
    - {!schedule}: schedule the trace as simulated network traffic from
      the collector node, for end-to-end integration runs. *)

open Dice_inet

type progress = {
  updates_sent : int;
  updates_processed : int;  (** router-side counter delta *)
  wall_seconds : float;  (** real time the replay took *)
}

val feed_dump :
  ?on_update:(int -> unit) ->
  Dice_bgp.Router.t ->
  peer:Ipv4.t ->
  next_hop:Ipv4.t ->
  Gen.t ->
  progress
(** Push every dump entry through [Router.handle_msg] as fast as possible
    (the "full load" scenario). [on_update i] fires after the [i]-th
    message — hook exploration work in there. *)

val feed_events :
  ?on_update:(int -> unit) ->
  Dice_bgp.Router.t ->
  peer:Ipv4.t ->
  next_hop:Ipv4.t ->
  Gen.t ->
  progress
(** Push the timed update tail (ignoring inter-arrival gaps; the caller
    owns pacing). *)

val schedule :
  Dice_sim.Network.t ->
  from_node:Dice_sim.Network.node_id ->
  to_node:Dice_sim.Network.node_id ->
  ?start_at:float ->
  ?dump_pace:float ->
  next_hop:Ipv4.t ->
  Gen.t ->
  int
(** Schedule the dump (paced [dump_pace] seconds apart, default 0.001)
    then the events at their trace times (offset by [start_at]) as framed
    BGP messages from the collector node. Returns messages scheduled. The
    receiving session must already be Established. *)
