(** Synthetic AS-level topology for generating realistic AS paths.

    Built by preferential attachment: a small clique of tier-1 networks,
    then every new AS picks one or two providers with probability skewed
    towards well-connected ASes — giving the heavy-tailed degree
    distribution real BGP tables exhibit. *)

type t

val generate : rng:Dice_util.Rng.t -> n_ases:int -> ?n_tier1:int -> unit -> t
(** [n_tier1] defaults to [min 8 n_ases]. AS numbers are dense from
    [base_asn] (64600) upward so they never collide with the testbed's
    own AS numbers. *)

val base_asn : int
val n_ases : t -> int
val asns : t -> int array
(** All AS numbers, index order = creation order (tier-1s first). *)

val providers : t -> int -> int list
(** Provider ASNs of an AS (empty for tier-1s). *)

val degree : t -> int -> int
(** Number of customer+provider edges at an AS. *)

val is_tier1 : t -> int -> bool

val random_as : t -> rng:Dice_util.Rng.t -> int
(** Degree-biased random AS (popular origins are picked more often). *)

val path_from_origin : t -> rng:Dice_util.Rng.t -> collector_as:int -> origin:int -> int list
(** An AS path as seen by a route collector peering with [collector_as]:
    [collector_as] first, then the (customer-to-provider reversed) chain
    down to [origin]. Loop-free. *)
