(** A compact MRT-inspired binary serialization of traces, so generated
    workloads can be written once and replayed across experiments (and so
    the repository exercises a real on-disk format, like the RouteViews
    dumps the paper consumes). *)

val write : Gen.t -> bytes
(** Serialize a trace. *)

val read : bytes -> Gen.t
(** @raise Invalid_argument on a corrupt image. *)

val save : string -> Gen.t -> unit
(** Write to a file. *)

val load : string -> Gen.t
(** Read from a file. @raise Sys_error / Invalid_argument. *)
