(** RouteViews-style trace synthesis.

    The paper replays "a full dump plus 15-min updates trace" from
    route-views.eqix (319,355 prefixes). We lack that proprietary capture,
    so this module generates an equivalent-shaped workload: a full-table
    dump whose prefix-length and AS-path-length distributions match
    published BGP table statistics, followed by a timed update trace with
    announce/withdraw churn at a configurable rate. *)

open Dice_inet

type entry = {
  prefix : Prefix.t;
  as_path : int list;  (** collector AS first, origin AS last *)
  origin : Dice_bgp.Attr.origin;
  med : int option;
}

type event =
  | Announce of { time : float; entry : entry }
  | Withdraw of { time : float; prefix : Prefix.t }

val event_time : event -> float

type t = {
  collector_as : int;  (** the AS of the "rest of the Internet" peer *)
  dump : entry array;  (** full-table dump, prefix order *)
  events : event array;  (** update trace, chronological *)
  duration : float;  (** trace length, seconds *)
}

type params = {
  seed : int64;
  n_prefixes : int;
  n_ases : int;
  collector_as : int;
  duration : float;  (** seconds of update trace; 900 = the paper's 15 min *)
  update_rate : float;  (** mean updates per second in the tail *)
  withdraw_fraction : float;  (** share of updates that are withdrawals *)
}

val default_params : params
(** seed 42, 20,000 prefixes (scaled-down; the bench can ask for the
    paper's 319,355), 600 ASes, AS 64700, 900 s at 0.3 update/s with 20%
    withdrawals. *)

val generate : params -> t

val origin_of : t -> Prefix.t -> int option
(** Origin AS a prefix was given in the dump. *)

val to_updates : t -> peer_as:int -> next_hop:Ipv4.t -> Dice_bgp.Msg.t list
(** The dump as a list of UPDATE messages (one prefix per message, like a
    real table transfer), announced by the collector peer. *)

val event_update : entry_next_hop:Ipv4.t -> event -> Dice_bgp.Msg.t
(** One trace event as an UPDATE message. *)
