module Rng = Dice_util.Rng

let base_asn = 64600

type t = {
  n : int;
  provider_lists : int list array;  (* index -> provider indices *)
  degrees : int array;
  n_tier1 : int;
}

let idx_of_asn asn = asn - base_asn
let asn_of_idx i = base_asn + i

let generate ~rng ~n_ases ?n_tier1 () =
  if n_ases < 1 then invalid_arg "Asgraph.generate: need at least one AS";
  let n_tier1 = min n_ases (Option.value n_tier1 ~default:(min 8 n_ases)) in
  let provider_lists = Array.make n_ases [] in
  let degrees = Array.make n_ases 0 in
  (* tier-1 clique *)
  for i = 0 to n_tier1 - 1 do
    degrees.(i) <- n_tier1 - 1
  done;
  (* preferential attachment for the rest *)
  let total_degree = ref (n_tier1 * (n_tier1 - 1)) in
  for i = n_tier1 to n_ases - 1 do
    let n_providers = if Rng.chance rng 0.3 then 2 else 1 in
    let pick () =
      (* roulette over degrees of existing ASes, with +1 smoothing *)
      let target = Rng.int rng (!total_degree + i) in
      let rec find j acc =
        if j >= i - 1 then j
        else begin
          let acc = acc + degrees.(j) + 1 in
          if acc > target then j else find (j + 1) acc
        end
      in
      find 0 0
    in
    let rec add_providers k acc =
      if k = 0 then acc
      else begin
        let p = pick () in
        if List.mem p acc then add_providers k acc else add_providers (k - 1) (p :: acc)
      end
    in
    let providers = add_providers n_providers [] in
    provider_lists.(i) <- providers;
    List.iter
      (fun p ->
        degrees.(p) <- degrees.(p) + 1;
        total_degree := !total_degree + 2)
      providers;
    degrees.(i) <- List.length providers
  done;
  { n = n_ases; provider_lists; degrees; n_tier1 }

let n_ases t = t.n

let asns t = Array.init t.n asn_of_idx

let check t asn =
  let i = idx_of_asn asn in
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Asgraph: unknown AS %d" asn);
  i

let providers t asn = List.map asn_of_idx t.provider_lists.(check t asn)

let degree t asn = t.degrees.(check t asn)

let is_tier1 t asn = check t asn < t.n_tier1

let random_as t ~rng =
  (* Zipf over creation order approximates degree bias (earlier ASes are
     better connected under preferential attachment). *)
  let i = Rng.zipf rng t.n 0.9 - 1 in
  asn_of_idx i

let path_from_origin t ~rng ~collector_as ~origin =
  let oi = check t origin in
  (* climb provider chains from the origin to a tier-1 *)
  let rec climb i acc guard =
    if i < t.n_tier1 || guard = 0 then i :: acc
    else begin
      match t.provider_lists.(i) with
      | [] -> i :: acc
      | ps -> begin
        let p = Rng.pick_list rng ps in
        climb p (i :: acc) (guard - 1)
      end
    end
  in
  (* [chain] is tier1 .. origin (top-down) *)
  let chain = climb oi [] 12 in
  let path = List.map asn_of_idx chain in
  let path = List.filter (fun a -> a <> collector_as) path in
  collector_as :: path
