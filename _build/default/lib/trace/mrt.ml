open Dice_inet
module Wbuf = Dice_wire.Wbuf
module Rbuf = Dice_wire.Rbuf

let magic = "DICEMRT1"

let origin_code = Dice_bgp.Attr.origin_code

let origin_of_code c =
  match Dice_bgp.Attr.origin_of_code c with
  | Some o -> o
  | None -> invalid_arg (Printf.sprintf "Mrt: bad origin code %d" c)

let encode_prefix w p =
  Wbuf.u8 w (Prefix.len p);
  Wbuf.u32 w (Prefix.network p)

let decode_prefix r =
  let len = Rbuf.u8 ~what:"prefix len" r in
  if len > 32 then invalid_arg "Mrt: prefix length > 32";
  Prefix.make (Rbuf.u32 ~what:"prefix addr" r) len

let encode_entry w (e : Gen.entry) =
  encode_prefix w e.prefix;
  Wbuf.u8 w (List.length e.as_path);
  List.iter (Wbuf.u32 w) e.as_path;
  Wbuf.u8 w (origin_code e.origin);
  match e.med with
  | Some m ->
    Wbuf.u8 w 1;
    Wbuf.u32 w m
  | None -> Wbuf.u8 w 0

let decode_entry r =
  let prefix = decode_prefix r in
  let n = Rbuf.u8 ~what:"path len" r in
  let as_path = List.init n (fun _ -> Rbuf.u32 ~what:"asn" r) in
  let origin = origin_of_code (Rbuf.u8 ~what:"origin" r) in
  let med = if Rbuf.u8 ~what:"has med" r = 1 then Some (Rbuf.u32 ~what:"med" r) else None in
  { Gen.prefix; as_path; origin; med }

(* times are stored exactly, as the two 32-bit halves of the float's bits *)
let encode_time w t =
  let bits = Int64.bits_of_float t in
  Wbuf.u32 w (Int64.to_int (Int64.shift_right_logical bits 32));
  Wbuf.u32 w (Int64.to_int (Int64.logand bits 0xFFFFFFFFL))

let decode_time r =
  let hi = Rbuf.u32 ~what:"time hi" r in
  let lo = Rbuf.u32 ~what:"time lo" r in
  Int64.float_of_bits (Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo))

let write (t : Gen.t) =
  let w = Wbuf.create ~capacity:(64 * Array.length t.dump) () in
  Wbuf.string w magic;
  Wbuf.u32 w t.collector_as;
  encode_time w t.duration;
  Wbuf.u32 w (Array.length t.dump);
  Array.iter (encode_entry w) t.dump;
  Wbuf.u32 w (Array.length t.events);
  Array.iter
    (fun ev ->
      match ev with
      | Gen.Announce { time; entry } ->
        Wbuf.u8 w 1;
        encode_time w time;
        encode_entry w entry
      | Gen.Withdraw { time; prefix } ->
        Wbuf.u8 w 2;
        encode_time w time;
        encode_prefix w prefix)
    t.events;
  Wbuf.contents w

let read bytes =
  try
    let r = Rbuf.of_bytes bytes in
    let m = Bytes.to_string (Rbuf.take ~what:"magic" r (String.length magic)) in
    if m <> magic then invalid_arg "Mrt.read: bad magic";
    let collector_as = Rbuf.u32 ~what:"collector" r in
    let duration = decode_time r in
    let n_dump = Rbuf.u32 ~what:"dump count" r in
    let dump = Array.init n_dump (fun _ -> decode_entry r) in
    let n_events = Rbuf.u32 ~what:"event count" r in
    let events =
      Array.init n_events (fun _ ->
          match Rbuf.u8 ~what:"event type" r with
          | 1 ->
            let time = decode_time r in
            Gen.Announce { time; entry = decode_entry r }
          | 2 ->
            let time = decode_time r in
            Gen.Withdraw { time; prefix = decode_prefix r }
          | c -> invalid_arg (Printf.sprintf "Mrt.read: bad event type %d" c))
    in
    { Gen.collector_as; dump; events; duration }
  with Rbuf.Truncated what -> invalid_arg ("Mrt.read: truncated at " ^ what)

let save path t =
  let oc = open_out_bin path in
  let b = write t in
  output_bytes oc b;
  close_out oc

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  read b
