lib/trace/gen.ml: Array Asgraph Attr Dice_bgp Dice_inet Dice_util Hashtbl Ipv4 List Prefix
