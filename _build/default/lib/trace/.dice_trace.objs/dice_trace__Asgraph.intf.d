lib/trace/asgraph.mli: Dice_util
