lib/trace/replay.mli: Dice_bgp Dice_inet Dice_sim Gen Ipv4
