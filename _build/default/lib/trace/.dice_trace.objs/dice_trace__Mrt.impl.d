lib/trace/mrt.ml: Array Bytes Dice_bgp Dice_inet Dice_wire Gen Int64 List Prefix Printf String
