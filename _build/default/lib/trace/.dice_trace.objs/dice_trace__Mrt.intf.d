lib/trace/mrt.mli: Gen
