lib/trace/asgraph.ml: Array Dice_util List Option Printf
