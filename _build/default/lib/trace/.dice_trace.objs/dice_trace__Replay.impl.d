lib/trace/replay.ml: Array Asn Dice_bgp Dice_inet Dice_sim Gen List Unix
