lib/trace/gen.mli: Dice_bgp Dice_inet Ipv4 Prefix
