open Dice_inet
module Router = Dice_bgp.Router

type progress = {
  updates_sent : int;
  updates_processed : int;
  wall_seconds : float;
}

let feed ?(on_update = fun _ -> ()) router ~peer msgs =
  let t0 = Unix.gettimeofday () in
  let before = Router.updates_processed router in
  let sent = ref 0 in
  List.iter
    (fun msg ->
      ignore (Router.handle_msg router ~peer msg);
      incr sent;
      on_update !sent)
    msgs;
  {
    updates_sent = !sent;
    updates_processed = Router.updates_processed router - before;
    wall_seconds = Unix.gettimeofday () -. t0;
  }

let feed_dump ?on_update router ~peer ~next_hop (t : Gen.t) =
  feed ?on_update router ~peer (Gen.to_updates t ~peer_as:t.collector_as ~next_hop)

let feed_events ?on_update router ~peer ~next_hop (t : Gen.t) =
  let msgs =
    Array.to_list (Array.map (Gen.event_update ~entry_next_hop:next_hop) t.events)
  in
  feed ?on_update router ~peer msgs

let schedule net ~from_node ~to_node ?(start_at = 0.0) ?(dump_pace = 0.001) ~next_hop
    (t : Gen.t) =
  let module Net = Dice_sim.Network in
  let count = ref 0 in
  Array.iteri
    (fun i e ->
      let msg =
        Dice_bgp.Msg.Update
          {
            withdrawn = [];
            attrs =
              [ Dice_bgp.Attr.Origin e.Gen.origin;
                Dice_bgp.Attr.As_path [ Asn.Path.Seq e.Gen.as_path ];
                Dice_bgp.Attr.Next_hop next_hop ]
              @ (match e.Gen.med with Some m -> [ Dice_bgp.Attr.Med m ] | None -> []);
            nlri = [ e.Gen.prefix ];
          }
      in
      let when_ = start_at +. (float_of_int i *. dump_pace) in
      Net.schedule_at net ~time:(max (Net.now net) when_) (fun () ->
          Net.send net ~src:from_node ~dst:to_node (Dice_bgp.Router_node.frame_bgp msg));
      incr count)
    t.dump;
  let dump_end = start_at +. (float_of_int (Array.length t.dump) *. dump_pace) in
  Array.iter
    (fun ev ->
      let msg = Gen.event_update ~entry_next_hop:next_hop ev in
      let when_ = dump_end +. Gen.event_time ev in
      Net.schedule_at net ~time:(max (Net.now net) when_) (fun () ->
          Net.send net ~src:from_node ~dst:to_node (Dice_bgp.Router_node.frame_bgp msg));
      incr count)
    t.events;
  !count
