(** Exploration search strategies.

    The paper's engine (Oasis) "has multiple search strategies"; its default
    "attempts to cover all execution paths reachable by the set of
    controlled symbolic inputs". We provide that one plus the two classic
    alternatives the ablation (experiment A2) compares. *)

type t =
  | Dfs
      (** Depth-first path coverage: negate the deepest untried branch
          first; the default, matching Oasis/Crest. *)
  | Generational
      (** SAGE-style: each run expands every branch after its negation
          bound; children are prioritized by the new branch coverage their
          parent run contributed. *)
  | Random_negation of int64
      (** Negate uniformly random untried branches (seeded). *)
  | Cover_new
      (** Only negate branches whose opposite direction is not yet covered
          — a greedy branch-coverage strategy. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
