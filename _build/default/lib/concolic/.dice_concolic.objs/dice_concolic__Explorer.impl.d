lib/concolic/explorer.ml: Array Coverage Dice_util Engine Format Hashtbl Int64 List Path Solver Strategy Sym Sys Unix
