lib/concolic/strategy.ml: Format Printf
