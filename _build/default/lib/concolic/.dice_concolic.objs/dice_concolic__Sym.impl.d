lib/concolic/sym.ml: Format Hashtbl Int Int64 List Stdlib
