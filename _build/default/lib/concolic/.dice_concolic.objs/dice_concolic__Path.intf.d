lib/concolic/path.mli: Format Sym
