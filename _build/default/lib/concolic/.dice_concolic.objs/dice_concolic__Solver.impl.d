lib/concolic/solver.ml: Dice_util Hashtbl Int64 Interval Lincons List Path Sym
