lib/concolic/cval.ml: Format Hashtbl Int64 Sym
