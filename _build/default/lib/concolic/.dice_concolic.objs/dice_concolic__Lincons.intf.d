lib/concolic/lincons.mli: Format Sym
