lib/concolic/strategy.mli: Format
