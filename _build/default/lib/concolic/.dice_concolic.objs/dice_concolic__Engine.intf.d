lib/concolic/engine.mli: Coverage Cval Path Sym
