lib/concolic/interval.ml: Format Int64 Seq Sym
