lib/concolic/lincons.ml: Format Hashtbl Int Int64 List Option Printf String Sym
