lib/concolic/interval.mli: Format Seq
