lib/concolic/cval.mli: Format Sym
