lib/concolic/coverage.mli: Path
