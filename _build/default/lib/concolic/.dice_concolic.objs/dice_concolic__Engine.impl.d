lib/concolic/engine.ml: Coverage Cval Hashtbl List Path Printf Sym
