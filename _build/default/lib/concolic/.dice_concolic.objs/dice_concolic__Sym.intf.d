lib/concolic/sym.mli: Format Hashtbl
