lib/concolic/solver.mli: Path Sym
