lib/concolic/explorer.mli: Coverage Engine Format Solver Strategy
