lib/concolic/coverage.ml: Hashtbl List Path
