lib/concolic/path.ml: Dice_util Format Hashtbl Int64 List Sym
