type outcome =
  | Sat of Sym.env
  | Unsat
  | Gave_up

type stats = {
  mutable calls : int;
  mutable sat : int;
  mutable unsat : int;
  mutable gave_up : int;
  mutable candidates_tried : int;
}

let stats_create () = { calls = 0; sat = 0; unsat = 0; gave_up = 0; candidates_tried = 0 }

let global_stats = stats_create ()

let reset_stats () =
  global_stats.calls <- 0;
  global_stats.sat <- 0;
  global_stats.unsat <- 0;
  global_stats.gave_up <- 0;
  global_stats.candidates_tried <- 0

let holds_all env cs = List.for_all (Path.constr_holds env) cs

(* ------------------------------------------------------------------ *)
(* Structural inversion                                                *)
(* ------------------------------------------------------------------ *)

(* Multiplicative inverse of an odd [a] modulo 2^w (Newton iteration). *)
let odd_inverse a w =
  let x = ref a in
  (* x := x * (2 - a*x) doubles correct bits; 6 rounds cover 64 bits *)
  for _ = 1 to 6 do
    x := Int64.mul !x (Int64.sub 2L (Int64.mul a !x))
  done;
  Sym.wrap w !x

let is_odd v = Int64.logand v 1L = 1L

(* Candidate values of the single free variable making [expr] (in which
   every other variable is already a constant) equal [target]. Sound but
   incomplete: all returned values are verified by the caller anyway.
   Linear terms are solved exactly first (modular inversion via
   {!Lincons}); the structural cases handle the non-linear operators. *)
let rec invert_eq expr target =
  let w = Sym.width expr in
  let target = Sym.wrap w target in
  match linear_solution expr target with
  | Some candidates -> candidates
  | None -> invert_eq_structural w expr target

and linear_solution expr target =
  match Lincons.of_sym expr with
  | Some lin when not (Lincons.is_constant lin) -> begin
    match Lincons.vars lin with
    | [ var_id ] -> Some (Lincons.solve_for lin ~var_id ~target ~env:(Hashtbl.create 0))
    | [] | _ :: _ :: _ -> None
  end
  | Some _ | None -> None

and invert_eq_structural w expr target =
  match expr with
  | Sym.Var _ -> [ target ]
  | Sym.Const c -> if Int64.equal c.value target then [ 0L ] else []
  | Sym.Unop (Sym.Neg, e) -> invert_eq e (Int64.neg target)
  | Sym.Unop (Sym.Bnot, e) -> invert_eq e (Int64.lognot target)
  | Sym.Unop (Sym.Lnot, e) ->
    (* Lnot e = target: target is 0 or 1 *)
    if Int64.equal target 1L then invert_eq e 0L
    else if Int64.equal target 0L then invert_nonzero e
    else []
  | Sym.Binop (op, a, b) -> invert_eq_binop w op a b target

and invert_eq_binop w op a b target =
  let const_side, expr_side, const_on_left =
    match (a, b) with
    | Sym.Const c, e -> (Some c.value, e, true)
    | e, Sym.Const c -> (Some c.value, e, false)
    | _, _ -> (None, a, false)
  in
  match (op, const_side) with
  | Sym.Add, Some c -> invert_eq expr_side (Int64.sub target c)
  | Sym.Sub, Some c ->
    if const_on_left then invert_eq expr_side (Int64.sub c target)
    else invert_eq expr_side (Int64.add target c)
  | Sym.Xor, Some c -> invert_eq expr_side (Int64.logxor target c)
  | Sym.Mul, Some c ->
    if is_odd c then invert_eq expr_side (Int64.mul target (odd_inverse c w))
    else if Int64.equal c 0L then if Int64.equal target 0L then [ 0L ] else []
    else begin
      (* factor out the power of two: c = c' * 2^t with c' odd *)
      let rec split c t = if is_odd c then (c, t) else split (Int64.shift_right_logical c 1) (t + 1) in
      let c', t = split c 0 in
      let low = Int64.logand target (Int64.sub (Int64.shift_left 1L t) 1L) in
      if not (Int64.equal low 0L) then []
      else
        invert_eq expr_side
          (Int64.mul (Int64.shift_right_logical target t) (odd_inverse c' w))
    end
  | Sym.Shl, Some c when not const_on_left ->
    let s = Int64.to_int c in
    if s < 0 || s >= 64 then if Int64.equal target 0L then [ 0L ] else []
    else begin
      let low_mask = Int64.sub (Int64.shift_left 1L s) 1L in
      if not (Int64.equal (Int64.logand target low_mask) 0L) then []
      else invert_eq expr_side (Int64.shift_right_logical target s)
    end
  | Sym.Lshr, Some c when not const_on_left ->
    let s = Int64.to_int c in
    if s < 0 || s >= 64 then if Int64.equal target 0L then [ 0L ] else []
    else begin
      let base = Int64.shift_left target s in
      let ones = Int64.sub (Int64.shift_left 1L s) 1L in
      invert_eq expr_side base @ invert_eq expr_side (Int64.logor base ones)
    end
  | Sym.And, Some m ->
    if not (Int64.equal (Int64.logand target (Int64.lognot m)) 0L) then []
    else begin
      let wm = Sym.wrap (Sym.width expr_side) (Int64.lognot m) in
      invert_eq expr_side target @ invert_eq expr_side (Int64.logor target wm)
    end
  | Sym.Or, Some m ->
    if not (Int64.equal (Int64.logand target m) m) then []
    else
      invert_eq expr_side (Int64.logand target (Int64.lognot m))
      @ invert_eq expr_side target
  | Sym.Eq, _ | Sym.Ne, _ | Sym.Ult, _ | Sym.Ule, _ | Sym.Ugt, _ | Sym.Uge, _ ->
    (* comparison produces 0/1; recurse as boolean *)
    if Int64.equal target 1L then invert_cmp op a b true
    else if Int64.equal target 0L then invert_cmp op a b false
    else []
  | _, _ -> []

(* Candidates making comparison [a op b] have the given truth value, where
   one side is constant. *)
and invert_cmp op a b want =
  let flip = function
    | Sym.Eq -> Sym.Ne
    | Sym.Ne -> Sym.Eq
    | Sym.Ult -> Sym.Uge
    | Sym.Ule -> Sym.Ugt
    | Sym.Ugt -> Sym.Ule
    | Sym.Uge -> Sym.Ult
    | op -> op
  in
  let op = if want then op else flip op in
  match (a, b) with
  | e, Sym.Const c -> invert_cmp_const e op c.value
  | Sym.Const c, e ->
    let mirror = function
      | Sym.Ult -> Sym.Ugt
      | Sym.Ule -> Sym.Uge
      | Sym.Ugt -> Sym.Ult
      | Sym.Uge -> Sym.Ule
      | op -> op
    in
    invert_cmp_const e (mirror op) c.value
  | _, _ -> []

(* Candidates for [e op k] (k constant on the right). *)
and invert_cmp_const e op k =
  let w = Sym.width e in
  let maxv = Sym.wrap w (-1L) in
  let u = Int64.unsigned_compare in
  match op with
  | Sym.Eq -> invert_eq e k
  | Sym.Ne ->
    List.concat_map (invert_eq e)
      [ Int64.add k 1L; Int64.sub k 1L; 0L; maxv; Int64.logxor k 1L ]
  | Sym.Ult ->
    if Int64.equal k 0L then []
    else List.concat_map (invert_eq e) [ Int64.sub k 1L; 0L; Int64.shift_right_logical k 1 ]
  | Sym.Ule -> List.concat_map (invert_eq e) [ k; 0L; Int64.sub k 1L ]
  | Sym.Ugt ->
    if u k maxv >= 0 then []
    else List.concat_map (invert_eq e) [ Int64.add k 1L; maxv ]
  | Sym.Uge -> List.concat_map (invert_eq e) [ k; maxv; Int64.add k 1L ]
  | _ -> []

(* Candidates making [expr] non-zero (boolean truth). *)
and invert_nonzero expr =
  match expr with
  | Sym.Binop (((Sym.Eq | Sym.Ne | Sym.Ult | Sym.Ule | Sym.Ugt | Sym.Uge) as op), a, b) ->
    invert_cmp op a b true
  | Sym.Binop (Sym.And, a, b) when Sym.width expr = 1 ->
    (* both conjuncts must hold; solve for whichever mentions the var *)
    invert_both a b true
  | Sym.Binop (Sym.Or, a, b) when Sym.width expr = 1 ->
    invert_nonzero_pick a b
  | Sym.Unop (Sym.Lnot, e) -> invert_eq e 0L
  | _ -> invert_cmp_const expr Sym.Ne 0L

and invert_zero expr =
  match expr with
  | Sym.Binop (((Sym.Eq | Sym.Ne | Sym.Ult | Sym.Ule | Sym.Ugt | Sym.Uge) as op), a, b) ->
    invert_cmp op a b false
  | Sym.Binop (Sym.Or, a, b) when Sym.width expr = 1 -> invert_both a b false
  | Sym.Binop (Sym.And, a, b) when Sym.width expr = 1 ->
    (* either conjunct zero suffices *)
    invert_zero_pick a b
  | Sym.Unop (Sym.Lnot, e) -> invert_nonzero e
  | _ -> invert_eq expr 0L

and invert_both a b want =
  (* conjunction (or joint falsity for Or): at most one side still mentions
     the variable (the other was substituted to a constant) *)
  let has_var e = Sym.vars e <> [] in
  let solve e = if want then invert_nonzero e else invert_zero e in
  match (has_var a, has_var b) with
  | true, false -> solve a
  | false, true -> solve b
  | true, true -> solve a @ solve b
  | false, false -> []

and invert_nonzero_pick a b = invert_both a b true @ []

and invert_zero_pick a b =
  let has_var e = Sym.vars e <> [] in
  (match has_var a with true -> invert_zero a | false -> [])
  @ (match has_var b with true -> invert_zero b | false -> [])

(* ------------------------------------------------------------------ *)
(* Fallback candidates                                                 *)
(* ------------------------------------------------------------------ *)

let constants_of expr =
  let acc = ref [] in
  let rec go = function
    | Sym.Const c -> acc := c.value :: !acc
    | Sym.Var _ -> ()
    | Sym.Unop (_, e) -> go e
    | Sym.Binop (_, a, b) ->
      go a;
      go b
  in
  go expr;
  !acc

let fallback_candidates expr var_width hint_value =
  let maxv = Sym.wrap var_width (-1L) in
  let base =
    [ 0L; 1L; 2L; maxv; Int64.sub maxv 1L; hint_value; Int64.add hint_value 1L;
      Int64.sub hint_value 1L ]
  in
  let from_consts =
    List.concat_map
      (fun k -> [ k; Int64.add k 1L; Int64.sub k 1L ])
      (constants_of expr)
  in
  let powers =
    List.init (min var_width 32) (fun i -> Int64.shift_left 1L i)
  in
  let rng = Dice_util.Rng.create 0x5EEDL in
  let sampled = List.init 48 (fun _ -> Sym.wrap var_width (Dice_util.Rng.int64 rng)) in
  base @ from_consts @ powers @ sampled

(* ------------------------------------------------------------------ *)
(* Repair loop                                                         *)
(* ------------------------------------------------------------------ *)

(* Split width-1 conjunctions into separate constraints: "And(a,b) must be
   non-zero" is "a non-zero" and "b non-zero" (dually for a zero Or).
   The repair loop fixes one variable at a time, so conjuncts mentioning
   different variables must be separate constraints to be solvable. *)
let rec flatten (c : Path.constr) =
  match (c.Path.expr, c.Path.expected_nonzero) with
  | Sym.Binop (Sym.And, a, b), true when Sym.width c.Path.expr = 1 ->
    flatten { Path.expr = a; expected_nonzero = true }
    @ flatten { Path.expr = b; expected_nonzero = true }
  | Sym.Binop (Sym.Or, a, b), false when Sym.width c.Path.expr = 1 ->
    flatten { Path.expr = a; expected_nonzero = false }
    @ flatten { Path.expr = b; expected_nonzero = false }
  | Sym.Unop (Sym.Lnot, e), want -> flatten { Path.expr = e; expected_nonzero = not want }
  | _, _ -> [ c ]

(* ------------------------------------------------------------------ *)
(* Interval propagation                                                *)
(* ------------------------------------------------------------------ *)

(* Derive per-variable unsigned intervals from single-variable atoms of
   the form [v cmp k]. Used to prune candidate values, to enumerate tiny
   domains exhaustively, and to detect empty domains (UNSAT) without
   search. *)
let is_cmp_op = function
  | Sym.Eq | Sym.Ne | Sym.Ult | Sym.Ule | Sym.Ugt | Sym.Uge -> true
  | Sym.Add | Sym.Sub | Sym.Mul | Sym.Udiv | Sym.Urem | Sym.And | Sym.Or | Sym.Xor
  | Sym.Shl | Sym.Lshr ->
    false

let var_interval (c : Path.constr) =
  let interval_of op k width want =
    let maxv = Sym.wrap width (-1L) in
    let flip = function
      | Sym.Eq -> Sym.Ne
      | Sym.Ne -> Sym.Eq
      | Sym.Ult -> Sym.Uge
      | Sym.Ule -> Sym.Ugt
      | Sym.Ugt -> Sym.Ule
      | Sym.Uge -> Sym.Ult
      | op -> op
    in
    let op = if want then op else flip op in
    match op with
    | Sym.Eq -> Some (Interval.point k)
    | Sym.Ule -> Some (Interval.make 0L k)
    | Sym.Ult ->
      if Int64.equal k 0L then None (* empty; caller treats as contradiction *)
      else Some (Interval.make 0L (Int64.sub k 1L))
    | Sym.Uge -> Some (Interval.make k maxv)
    | Sym.Ugt ->
      if Int64.unsigned_compare k maxv >= 0 then None
      else Some (Interval.make (Int64.add k 1L) maxv)
    | Sym.Ne | Sym.Add | Sym.Sub | Sym.Mul | Sym.Udiv | Sym.Urem | Sym.And | Sym.Or
    | Sym.Xor | Sym.Shl | Sym.Lshr ->
      Some (Interval.full width)
  in
  match c.Path.expr with
  | Sym.Binop (op, Sym.Var v, Sym.Const k) when is_cmp_op op ->
    Some (v, interval_of op (Sym.wrap v.Sym.width k.value) v.Sym.width c.Path.expected_nonzero)
  | Sym.Binop (op, Sym.Const k, Sym.Var v) when is_cmp_op op ->
    let mirror = function
      | Sym.Ult -> Sym.Ugt
      | Sym.Ule -> Sym.Uge
      | Sym.Ugt -> Sym.Ult
      | Sym.Uge -> Sym.Ule
      | op -> op
    in
    Some
      (v, interval_of (mirror op) (Sym.wrap v.Sym.width k.value) v.Sym.width
           c.Path.expected_nonzero)
  | _ -> None

(* [Ok bounds] with a table of per-variable intervals, or [Error ()] when
   some variable's domain is provably empty. *)
let propagate_intervals cs =
  let bounds : (int, Interval.t) Hashtbl.t = Hashtbl.create 8 in
  let contradiction = ref false in
  List.iter
    (fun c ->
      match var_interval c with
      | Some (v, Some ivl) -> begin
        match Hashtbl.find_opt bounds v.Sym.id with
        | None -> Hashtbl.replace bounds v.Sym.id ivl
        | Some existing -> begin
          match Interval.inter existing ivl with
          | Some merged -> Hashtbl.replace bounds v.Sym.id merged
          | None -> contradiction := true
        end
      end
      | Some (_, None) -> contradiction := true
      | None -> ())
    cs;
  if !contradiction then Error () else Ok bounds

let first_violated env cs =
  let rec go i = function
    | [] -> None
    | c :: rest -> if Path.constr_holds env c then go (i + 1) rest else Some (i, c)
  in
  go 0 cs

let solve ?(stats = global_stats) ?(max_repairs = 256) ~hint cs =
  stats.calls <- stats.calls + 1;
  global_stats.calls <-
    (if stats == global_stats then global_stats.calls else global_stats.calls + 1);
  let cs = List.concat_map flatten cs in
  match propagate_intervals cs with
  | Error () ->
    stats.unsat <- stats.unsat + 1;
    Unsat
  | Ok bounds ->
  let env : Sym.env = Hashtbl.copy hint in
  let tried : (int * int * int64, unit) Hashtbl.t = Hashtbl.create 64 in
  let rec repair budget =
    if budget = 0 then begin
      stats.gave_up <- stats.gave_up + 1;
      Gave_up
    end
    else begin
      match first_violated env cs with
      | None ->
        stats.sat <- stats.sat + 1;
        Sat (Hashtbl.copy env)
      | Some (ci, c) -> begin
        let vs = Sym.vars c.Path.expr in
        if vs = [] then begin
          (* variable-free and violated: genuine contradiction *)
          stats.unsat <- stats.unsat + 1;
          Unsat
        end
        else begin
          (* Try to fix this constraint by adjusting one variable.

             Strict phase: a candidate is accepted only if every
             constraint up to and including [ci] holds afterwards — plain
             coordinate descent would otherwise thrash between this
             constraint and an earlier one over the same variable.
             Relaxed phase (only if strict fails): accept a candidate
             that satisfies just this constraint and let later rounds
             repair the damage. *)
          let candidates_for v =
            let reduced = Sym.subst_eval_except env ~keep:v.Sym.id c.Path.expr in
            let derived =
              if c.Path.expected_nonzero then invert_nonzero reduced
              else invert_zero reduced
            in
            let hint_value =
              match Hashtbl.find_opt env v.Sym.id with
              | Some x -> x
              | None -> 0L
            in
            let fall = fallback_candidates reduced v.Sym.width hint_value in
            let all = List.map (Sym.wrap v.Sym.width) (derived @ fall) in
            (* interval pruning: drop candidates outside the variable's
               domain, seed the bounds themselves, and enumerate tiny
               domains exhaustively *)
            match Hashtbl.find_opt bounds v.Sym.id with
            | None -> all
            | Some ivl ->
              let enumerated =
                if Interval.size_le ivl 48 then List.of_seq (Interval.to_seq ivl) else []
              in
              let kept = List.filter (fun x -> Interval.mem x ivl) all in
              (Interval.clamp ivl hint_value :: ivl.Interval.lo :: ivl.Interval.hi :: kept)
              @ enumerated
          in
          let prefix_holds upto =
            let rec go i = function
              | [] -> true
              | x :: rest ->
                if i > upto then true
                else Path.constr_holds env x && go (i + 1) rest
            in
            go 0 cs
          in
          let try_candidate ~strict v ok cand =
            if ok then true
            else begin
              let key = (ci + if strict then 0 else 1000000), v.Sym.id, cand in
              if Hashtbl.mem tried key then false
              else begin
                Hashtbl.add tried key ();
                stats.candidates_tried <- stats.candidates_tried + 1;
                let saved = Hashtbl.find_opt env v.Sym.id in
                Hashtbl.replace env v.Sym.id cand;
                let ok_now =
                  if strict then prefix_holds ci else Path.constr_holds env c
                in
                if ok_now then true
                else begin
                  (match saved with
                  | Some x -> Hashtbl.replace env v.Sym.id x
                  | None -> Hashtbl.remove env v.Sym.id);
                  false
                end
              end
            end
          in
          let phase ~strict =
            List.fold_left
              (fun fixed v ->
                if fixed then true
                else List.fold_left (try_candidate ~strict v) false (candidates_for v))
              false vs
          in
          if phase ~strict:true || phase ~strict:false then repair (budget - 1)
          else begin
            (* no candidate for any variable even under the relaxed rule:
               with a single variable this conjunction is as good as
               refuted *)
            if List.length vs = 1 then stats.unsat <- stats.unsat + 1
            else stats.gave_up <- stats.gave_up + 1;
            if List.length vs = 1 then Unsat else Gave_up
          end
        end
      end
    end
  in
  repair max_repairs
