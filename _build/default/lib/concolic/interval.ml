type t = { lo : int64; hi : int64 }

let ucmp = Int64.unsigned_compare

let full width = { lo = 0L; hi = Sym.wrap width (-1L) }

let point v = { lo = v; hi = v }

let make lo hi =
  if ucmp lo hi > 0 then invalid_arg "Interval.make: empty";
  { lo; hi }

let mem v t = ucmp t.lo v <= 0 && ucmp v t.hi <= 0

let inter a b =
  let lo = if ucmp a.lo b.lo >= 0 then a.lo else b.lo in
  let hi = if ucmp a.hi b.hi <= 0 then a.hi else b.hi in
  if ucmp lo hi <= 0 then Some { lo; hi } else None

let is_point t = Int64.equal t.lo t.hi

let size_le t n =
  (* size = hi - lo + 1; compare without overflow *)
  let diff = Int64.sub t.hi t.lo in
  ucmp diff (Int64.of_int (n - 1)) <= 0

let to_seq t =
  let rec from v () =
    if ucmp v t.hi > 0 then Seq.Nil
    else if Int64.equal v t.hi then Seq.Cons (v, fun () -> Seq.Nil)
    else Seq.Cons (v, from (Int64.add v 1L))
  in
  from t.lo

let clamp t v = if ucmp v t.lo < 0 then t.lo else if ucmp v t.hi > 0 then t.hi else v

let pp ppf t = Format.fprintf ppf "[%Lu, %Lu]" t.lo t.hi
