(** Unsigned 64-bit intervals, used to prune solver candidates from
    single-variable range constraints (e.g. the seed constraint
    [masklen <= 32] on symbolized NLRI fields). *)

type t = { lo : int64; hi : int64 }
(** Invariant: [lo <=u hi] (unsigned). *)

val full : int -> t
(** Whole domain of a [width]-bit variable. *)

val point : int64 -> t

val make : int64 -> int64 -> t
(** @raise Invalid_argument if [lo >u hi]. *)

val mem : int64 -> t -> bool
val inter : t -> t -> t option
val is_point : t -> bool
val size_le : t -> int -> bool
(** Does the interval contain at most [n] values? *)

val to_seq : t -> int64 Seq.t
(** Enumerate values in increasing order — only call when [size_le] some
    small bound. *)

val clamp : t -> int64 -> int64
(** Nearest member of the interval to the argument. *)

val pp : Format.formatter -> t -> unit
