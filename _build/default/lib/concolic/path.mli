(** Branch sites and path conditions.

    A {e branch site} identifies one static conditional in the program under
    test (what CIL instrumentation gives the paper's engine). A {e path
    condition} is the sequence of symbolic branch outcomes one execution
    recorded; negating its [i]-th entry and solving the prefix up to [i]
    yields an input that steers execution down the other side of that
    branch (paper Figure 1). *)

module Site : sig
  type t = private { id : int; name : string }

  val make : string -> t
  (** Register a site. Each call returns a distinct site; call once per
      static program location (at module initialization), not per
      execution. *)

  val intern : string -> t
  (** Return the site registered under this name, creating it on first
      use. The idiomatic way to name static branch locations. *)

  val of_existing : string -> t
  (** Return the site previously registered under this name.
      @raise Not_found if none. *)

  val id : t -> int
  val name : t -> string
  val count : unit -> int
  (** Total registered sites (for coverage denominators). *)

  val pp : Format.formatter -> t -> unit
end

type constr = { expr : Sym.t; expected_nonzero : bool }
(** The constraint "[expr] evaluates non-zero" (or zero). *)

val negate : constr -> constr

val constr_holds : Sym.env -> constr -> bool

val pp_constr : Format.formatter -> constr -> unit

type entry = { site : Site.t; constr : constr }
(** One recorded symbolic branch: at [site], the execution went the way
    [constr] describes. *)

type t = entry list
(** A path condition, in execution order. *)

val length : t -> int
val pp : Format.formatter -> t -> unit

val signature : t -> int64
(** Order-sensitive hash of (site, direction) pairs — identifies the
    execution path for deduplication. *)
