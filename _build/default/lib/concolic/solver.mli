(** Constraint solver for path conditions.

    Plays the role the STP-style solver plays for Oasis/Crest: given the
    conjunction of constraints recorded along a path prefix plus one negated
    branch predicate, find concrete input values that satisfy them.

    The implementation is a repair-loop search seeded by the hint
    assignment (the inputs of the run that produced the path — which
    already satisfy every constraint except the negated one):

    - constraints are checked by evaluation;
    - a violated constraint is reduced to a single candidate variable by
      substituting the current values of all others, then {e structurally
      inverted} (addition, xor, masks, shifts, odd multiplication, boolean
      structure over comparisons) to enumerate candidate values;
    - deterministic boundary and sampled candidates back the cases
      inversion cannot reach;
    - the loop repairs violated constraints until all hold or a budget is
      exhausted.

    The explorer tolerates incompleteness: a wrong model merely produces a
    divergent execution whose {e actual} path is recorded and explored. *)

type outcome =
  | Sat of Sym.env  (** a model: every constraint evaluates as required *)
  | Unsat  (** proven contradiction (a variable-free constraint failed) *)
  | Gave_up  (** budget exhausted without a model *)

type stats = {
  mutable calls : int;
  mutable sat : int;
  mutable unsat : int;
  mutable gave_up : int;
  mutable candidates_tried : int;
}

val stats_create : unit -> stats
val global_stats : stats
(** Accumulated across all [solve] calls (reset with [reset_stats]). *)

val reset_stats : unit -> unit

val solve :
  ?stats:stats -> ?max_repairs:int -> hint:Sym.env -> Path.constr list -> outcome
(** [solve ~hint cs] searches for an assignment satisfying all of [cs],
    starting from [hint] (unmentioned variables default to 0).
    [max_repairs] bounds the repair iterations (default 256). The returned
    environment is fresh (callers may mutate it). *)

val holds_all : Sym.env -> Path.constr list -> bool
(** Check a model (exposed for property tests). *)
