type t =
  | Dfs
  | Generational
  | Random_negation of int64
  | Cover_new

let to_string = function
  | Dfs -> "dfs"
  | Generational -> "generational"
  | Random_negation seed -> Printf.sprintf "random(seed=%Ld)" seed
  | Cover_new -> "cover-new"

let pp ppf t = Format.pp_print_string ppf (to_string t)
