(** The concolic execution runtime.

    Instrumented code receives a {!ctx} and routes its symbolic inputs
    through {!input} and its conditionals through {!branch}. A non-recording
    context (see {!null}) makes both operations near-free, which is how the
    live system runs with "virtually no overhead" while the instrumented
    behaviour is only engaged during exploration, off the critical path
    (paper §3.2). *)

module Space : sig
  (** The input space of one exploration: a stable mapping from input names
      to symbolic variables, shared by every run so that constraints from
      different runs talk about the same variables. *)

  type t

  val create : unit -> t

  val var : t -> name:string -> width:int -> Sym.var
  (** Memoized: the same name always yields the same variable.
      @raise Invalid_argument if re-used with a different width. *)

  val find : t -> string -> Sym.var option
  val names : t -> string list
  (** Registered names in first-registration order. *)
end

type ctx

val create : ?coverage:Coverage.t -> space:Space.t -> overrides:Sym.env -> unit -> ctx
(** A recording context for one exploration run. [overrides] gives solver-
    chosen concrete values by variable id; inputs not overridden use their
    program-supplied defaults. *)

val null : unit -> ctx
(** A non-recording context: inputs stay concrete, branches just evaluate.
    This is what the deployed system runs with. *)

val recording : ctx -> bool

val input : ctx -> name:string -> width:int -> default:int64 -> Cval.t
(** Declare/read a symbolic input. In a recording context the result
    carries a symbolic shadow and its concrete value is the override if one
    exists, else [default]. In a null context it is just [default]. *)

val constrain : ctx -> Sym.t -> nonzero:bool -> unit
(** Record a seed constraint that is not a program branch (e.g. a message
    well-formedness invariant the symbolizer guarantees, such as
    [masklen <= 32]). Seed constraints prefix the path condition so the
    solver always respects them, but they are not negation candidates. *)

val branch : ctx -> Path.Site.t -> Cval.t -> bool
(** [branch ctx site cond] returns the concrete truth of [cond], recording
    a path constraint if [cond] carries a symbolic shadow and coverage for
    the site either way (when recording). *)

val branchf : ctx -> string -> Cval.t -> bool
(** [branch] with the site interned from a name — convenient at use sites. *)

val env : ctx -> Sym.env
(** Concrete values the run's inputs actually had (by variable id) — the
    solver hint for negations of this run's path. *)

val path : ctx -> Path.t
(** Negatable path condition, in execution order (seed constraints
    excluded). *)

val seed_constraints : ctx -> Path.constr list
(** Seed constraints, in registration order. *)

val assignment : ctx -> space:Space.t -> (string * int64) list
(** The run's input values by name (reporting). *)
