type t = (int * bool, unit) Hashtbl.t

let create () = Hashtbl.create 128

let record t site dir =
  let key = (Path.Site.id site, dir) in
  if Hashtbl.mem t key then false
  else begin
    Hashtbl.add t key ();
    true
  end

let covered t site dir = Hashtbl.mem t (Path.Site.id site, dir)

let fully_covered t site = covered t site true && covered t site false

let site_count t =
  let sites = Hashtbl.create 64 in
  Hashtbl.iter (fun (id, _) () -> Hashtbl.replace sites id ()) t;
  Hashtbl.length sites

let direction_count t = Hashtbl.length t

let merge_into ~dst t = Hashtbl.iter (fun k () -> Hashtbl.replace dst k ()) t

let snapshot t =
  Hashtbl.fold (fun k () acc -> k :: acc) t [] |> List.sort compare
