type t = { conc : int64; sym : Sym.t option; width : int }

let concrete ~width conc = { conc = Sym.wrap width conc; sym = None; width }

let of_int ~width i = concrete ~width (Int64.of_int i)

let symbolic v conc =
  { conc = Sym.wrap v.Sym.width conc; sym = Some (Sym.of_var v); width = v.Sym.width }

let make ~width conc sym = { conc = Sym.wrap width conc; sym; width }

let conc t = t.conc
let to_int t = Int64.to_int t.conc
let sym t = t.sym
let width t = t.width
let is_symbolic t = t.sym <> None

let bool_of t = t.conc <> 0L

let of_bool b = { conc = (if b then 1L else 0L); sym = None; width = 1 }

(* The symbolic term for an operand: its shadow if present, else its
   concrete value as a constant. Only called when building a mixed term. *)
let term t =
  match t.sym with
  | Some s -> s
  | None -> Sym.const ~width:t.width t.conc

let unop op a =
  let w =
    match op with
    | Sym.Lnot -> 1
    | Sym.Neg | Sym.Bnot -> a.width
  in
  let e = Sym.Unop (op, term a) in
  let conc = Sym.eval (Hashtbl.create 0) (Sym.Unop (op, Sym.const ~width:a.width a.conc)) in
  match a.sym with
  | None -> { conc; sym = None; width = w }
  | Some _ -> { conc; sym = Some e; width = w }

let binop op a b =
  let w =
    match op with
    | Sym.Eq | Sym.Ne | Sym.Ult | Sym.Ule | Sym.Ugt | Sym.Uge -> 1
    | Sym.Add | Sym.Sub | Sym.Mul | Sym.Udiv | Sym.Urem | Sym.And | Sym.Or | Sym.Xor
    | Sym.Shl | Sym.Lshr ->
      max a.width b.width
  in
  let conc =
    Sym.eval (Hashtbl.create 0)
      (Sym.Binop (op, Sym.const ~width:a.width a.conc, Sym.const ~width:b.width b.conc))
  in
  match (a.sym, b.sym) with
  | None, None -> { conc; sym = None; width = w }
  | _, _ -> { conc; sym = Some (Sym.Binop (op, term a, term b)); width = w }

let add = binop Sym.Add
let sub = binop Sym.Sub
let mul = binop Sym.Mul
let logand = binop Sym.And
let logor = binop Sym.Or
let logxor = binop Sym.Xor

let shift_left a n = binop Sym.Shl a (concrete ~width:8 (Int64.of_int n))
let shift_right a n = binop Sym.Lshr a (concrete ~width:8 (Int64.of_int n))

let eq = binop Sym.Eq
let ne = binop Sym.Ne
let ult = binop Sym.Ult
let ule = binop Sym.Ule
let ugt = binop Sym.Ugt
let uge = binop Sym.Uge

let zext ~width v =
  assert (width >= v.width);
  binop Sym.Or (concrete ~width 0L) v

let not_ = unop Sym.Lnot
let and_ = binop Sym.And
let or_ = binop Sym.Or

let pp ppf t =
  match t.sym with
  | None -> Format.fprintf ppf "%Lu" t.conc
  | Some s -> Format.fprintf ppf "%Lu{%a}" t.conc Sym.pp s
