(** Concolic values: a concrete machine word paired with an optional
    symbolic shadow term.

    Code under test computes on [Cval.t]s. When no operand carries a
    symbolic part, results stay purely concrete — this is the "original
    code" fast path the paper gets by linking instrumented and original
    code together; recording only happens when symbolic data flows. *)

type t = private { conc : int64; sym : Sym.t option; width : int }

val concrete : width:int -> int64 -> t
(** A purely concrete value (wrapped to [width]). *)

val of_int : width:int -> int -> t

val symbolic : Sym.var -> int64 -> t
(** [symbolic v conc] pairs input variable [v] with its current concrete
    value. *)

val make : width:int -> int64 -> Sym.t option -> t
(** General constructor; wraps the concrete part. *)

val conc : t -> int64
val to_int : t -> int
(** Concrete part as [int] (values here always fit: widths <= 32 in the
    BGP code). *)

val sym : t -> Sym.t option
val width : t -> int
val is_symbolic : t -> bool

val bool_of : t -> bool
(** [true] iff the concrete part is non-zero. *)

val of_bool : bool -> t
(** Width-1 concrete 0/1. *)

(** {1 Operators}

    Each computes the concrete result eagerly and builds the symbolic term
    only when at least one operand is symbolic. *)

val unop : Sym.unop -> t -> t
val binop : Sym.binop -> t -> t -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val eq : t -> t -> t
val ne : t -> t -> t
val ult : t -> t -> t
val ule : t -> t -> t
val ugt : t -> t -> t
val uge : t -> t -> t

val zext : width:int -> t -> t
(** Zero-extend to a wider width (identity on the value; widens the
    term). Requires [width >= width t]. *)

val not_ : t -> t
(** Logical negation of a width-1 value. *)

val and_ : t -> t -> t
val or_ : t -> t -> t
(** Non-short-circuit boolean combinators on width-1 values. For
    short-circuit evaluation, branch on the first operand instead (which
    records the implied constraint, as concolic execution must). *)

val pp : Format.formatter -> t -> unit
