type t = { network : Ipv4.t; len : int }

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: bad length";
  { network = Ipv4.apply_mask addr len; len }

let network t = t.network
let len t = t.len

let default = { network = 0; len = 0 }
let host addr = { network = addr; len = 32 }

let of_string_opt s =
  match String.index_opt s '/' with
  | None -> Option.map host (Ipv4.of_string_opt s)
  | Some i -> begin
    let addr = String.sub s 0 i in
    let l = String.sub s (i + 1) (String.length s - i - 1) in
    match (Ipv4.of_string_opt addr, int_of_string_opt l) with
    | Some a, Some l when l >= 0 && l <= 32 -> Some (make a l)
    | _, _ -> None
  end

let of_string s =
  match of_string_opt s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string: %S" s)

let to_string t = Printf.sprintf "%s/%d" (Ipv4.to_string t.network) t.len

let compare a b =
  match Ipv4.compare a.network b.network with
  | 0 -> Int.compare a.len b.len
  | c -> c

let equal a b = a.network = b.network && a.len = b.len

let contains p a = Ipv4.apply_mask a p.len = p.network

let subsumes p q = q.len >= p.len && Ipv4.apply_mask q.network p.len = p.network

let overlaps p q = subsumes p q || subsumes q p

let first_address t = t.network
let last_address t = t.network lor (Ipv4.mask t.len lxor 0xFFFFFFFF)

let split t =
  if t.len >= 32 then None
  else begin
    let l = t.len + 1 in
    let lo = { network = t.network; len = l } in
    let hi = { network = t.network lor (1 lsl (32 - l)); len = l } in
    Some (lo, hi)
  end

let bit t i =
  assert (i >= 0 && i < t.len);
  Ipv4.bit t.network i

let pp ppf t = Format.pp_print_string ppf (to_string t)

let hash t = (t.network * 31) lxor t.len
