type t = int

let zero = 0
let broadcast = 0xFFFFFFFF

let of_octets a b c d =
  if a < 0 || a > 255 || b < 0 || b > 255 || c < 0 || c > 255 || d < 0 || d > 255 then
    invalid_arg "Ipv4.of_octets: octet out of range";
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let to_octets t =
  ((t lsr 24) land 0xFF, (t lsr 16) land 0xFF, (t lsr 8) land 0xFF, t land 0xFF)

let of_string_opt s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> begin
    let octet x =
      match int_of_string_opt x with
      | Some v when v >= 0 && v <= 255 && x <> "" -> Some v
      | Some _ | None -> None
    in
    match (octet a, octet b, octet c, octet d) with
    | Some a, Some b, Some c, Some d -> Some (of_octets a b c d)
    | _, _, _, _ -> None
  end
  | _ -> None

let of_string s =
  match of_string_opt s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Ipv4.of_string: %S" s)

let to_string t =
  let a, b, c, d = to_octets t in
  Printf.sprintf "%d.%d.%d.%d" a b c d

let of_int32 i = Int32.to_int i land 0xFFFFFFFF
let to_int32 t = Int32.of_int t

let compare = Int.compare

let succ t = (t + 1) land 0xFFFFFFFF

let bit t i =
  assert (i >= 0 && i < 32);
  (t lsr (31 - i)) land 1 = 1

let mask len =
  assert (len >= 0 && len <= 32);
  if len = 0 then 0 else (0xFFFFFFFF lsl (32 - len)) land 0xFFFFFFFF

let apply_mask t len = t land mask len

let pp ppf t = Format.pp_print_string ppf (to_string t)
