lib/inet/community.mli: Format
