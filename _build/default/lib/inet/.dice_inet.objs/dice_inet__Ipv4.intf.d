lib/inet/ipv4.mli: Format
