lib/inet/prefix_trie.mli: Ipv4 Prefix
