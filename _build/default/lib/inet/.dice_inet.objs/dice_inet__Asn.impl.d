lib/inet/asn.ml: Format Int List Printf String
