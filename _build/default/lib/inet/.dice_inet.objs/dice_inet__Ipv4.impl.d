lib/inet/ipv4.ml: Format Int Int32 Printf String
