lib/inet/asn.mli: Format
