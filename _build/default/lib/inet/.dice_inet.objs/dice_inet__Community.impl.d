lib/inet/community.ml: Format Int Printf String
