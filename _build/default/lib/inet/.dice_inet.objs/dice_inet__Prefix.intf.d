lib/inet/prefix.mli: Format Ipv4
