lib/inet/prefix_trie.ml: Int32 Ipv4 List Option Prefix
