(** IPv4 addresses represented as unboxed 32-bit values carried in an
    OCaml [int] (always non-negative, range [0, 2^32)). *)

type t = int
(** The address as an integer in host order; e.g. [10.0.0.1] is
    [0x0A000001]. Invariant: [0 <= t < 2^32]. *)

val zero : t
val broadcast : t
(** [255.255.255.255]. *)

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] builds [a.b.c.d]. Each octet must be in
    [\[0, 255\]]. *)

val to_octets : t -> int * int * int * int

val of_string : string -> t
(** Parse dotted-quad notation. @raise Invalid_argument on malformed
    input. *)

val of_string_opt : string -> t option

val to_string : t -> string

val of_int32 : int32 -> t
(** Reinterpret a (possibly negative) [int32] as an unsigned address. *)

val to_int32 : t -> int32

val compare : t -> t -> int

val succ : t -> t
(** Next address, wrapping at [broadcast]. *)

val bit : t -> int -> bool
(** [bit a i] is bit [i] of [a] counting from the most significant
    (bit 0 is the top bit). Requires [0 <= i < 32]. *)

val mask : int -> t
(** [mask len] is the netmask with [len] leading one-bits.
    Requires [0 <= len <= 32]. *)

val apply_mask : t -> int -> t
(** [apply_mask a len] zeroes all but the first [len] bits. *)

val pp : Format.formatter -> t -> unit
