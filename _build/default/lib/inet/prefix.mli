(** CIDR prefixes ([a.b.c.d/len]).

    The canonical form keeps only the first [len] bits of the network
    address; construction normalizes. *)

type t = private { network : Ipv4.t; len : int }
(** Invariant: [0 <= len <= 32] and [network] has zeros past bit [len]. *)

val make : Ipv4.t -> int -> t
(** [make addr len] normalizes [addr] to [len] bits.
    @raise Invalid_argument if [len] is out of range. *)

val network : t -> Ipv4.t
val len : t -> int

val default : t
(** [0.0.0.0/0]. *)

val host : Ipv4.t -> t
(** A /32. *)

val of_string : string -> t
(** Parse ["10.0.0.0/8"]. A bare address means /32.
    @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option

val to_string : t -> string

val compare : t -> t -> int
(** Total order: by network, then by length. *)

val equal : t -> t -> bool

val contains : t -> Ipv4.t -> bool
(** [contains p a]: is address [a] inside prefix [p]? *)

val subsumes : t -> t -> bool
(** [subsumes p q]: is [q] equal to or more specific than [p]
    (i.e. [q]'s address block is inside [p]'s)? *)

val overlaps : t -> t -> bool
(** Do the two address blocks intersect? *)

val first_address : t -> Ipv4.t
val last_address : t -> Ipv4.t

val split : t -> (t * t) option
(** [split p] is the two halves of [p], or [None] for a /32. *)

val bit : t -> int -> bool
(** [bit p i] is bit [i] of the network address, [0 <= i < len p]. *)

val pp : Format.formatter -> t -> unit

val hash : t -> int
