type t = int

let pp ppf t = Format.fprintf ppf "AS%d" t
let to_string t = Printf.sprintf "AS%d" t
let compare = Int.compare

module Path = struct
  type segment =
    | Seq of t list
    | Set of t list

  type nonrec t = segment list

  let empty = []

  let prepend asn path =
    match path with
    | Seq s :: rest -> Seq (asn :: s) :: rest
    | (Set _ :: _ | []) as p -> Seq [ asn ] :: p

  let length path =
    List.fold_left
      (fun acc seg ->
        match seg with
        | Seq s -> acc + List.length s
        | Set _ -> acc + 1)
      0 path

  let rec origin_as = function
    | [] -> None
    | [ Seq s ] -> begin
      match List.rev s with
      | last :: _ -> Some last
      | [] -> None
    end
    | [ Set _ ] -> None
    | _ :: rest -> origin_as rest

  let first_as = function
    | Seq (a :: _) :: _ -> Some a
    | (Seq [] | Set _) :: _ | [] -> None

  let contains path asn =
    List.exists
      (fun seg ->
        match seg with
        | Seq s | Set s -> List.mem asn s)
      path

  let as_list path =
    List.concat_map
      (fun seg ->
        match seg with
        | Seq s | Set s -> s)
      path

  let equal (a : t) (b : t) = a = b

  let to_string path =
    let seg = function
      | Seq s -> String.concat " " (List.map string_of_int s)
      | Set s -> "{" ^ String.concat "," (List.map string_of_int s) ^ "}"
    in
    String.concat " " (List.map seg path)

  let pp ppf t = Format.pp_print_string ppf (to_string t)
end
