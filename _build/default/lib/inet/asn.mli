(** Autonomous-system numbers and AS paths. *)

type t = int
(** A 16/32-bit AS number. Invariant: [0 <= t < 2^32]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val compare : t -> t -> int

(** AS_PATH values: an ordered list of segments (RFC 4271 §4.3). *)
module Path : sig
  type segment =
    | Seq of t list  (** AS_SEQUENCE: ordered *)
    | Set of t list  (** AS_SET: unordered aggregate *)

  type nonrec t = segment list

  val empty : t

  val prepend : int -> t -> t
  (** [prepend asn path]: prepend [asn] to the leading AS_SEQUENCE, creating
      one if the path starts with a set or is empty. This is the eBGP export
      operation. *)

  val length : t -> int
  (** Decision-process length: each sequence member counts 1, each set
      counts 1 in total (RFC 4271 §9.1.2.2). *)

  val origin_as : t -> int option
  (** Rightmost AS of the path — the AS that originated the route. [None]
      for an empty path or one ending in a set. *)

  val first_as : t -> int option
  (** Leftmost AS — the neighbor the route was learned from. *)

  val contains : t -> int -> bool
  (** Loop detection: does the path mention the AS anywhere? *)

  val as_list : t -> int list
  (** All ASNs in order of appearance (sets flattened). *)

  val equal : t -> t -> bool
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
end
