type t = int

let make asn value =
  if asn < 0 || asn > 0xFFFF || value < 0 || value > 0xFFFF then
    invalid_arg "Community.make: parts out of range";
  (asn lsl 16) lor value

let asn_part t = (t lsr 16) land 0xFFFF
let value_part t = t land 0xFFFF

let no_export = 0xFFFFFF01
let no_advertise = 0xFFFFFF02

let of_string_opt s =
  match s with
  | "no-export" -> Some no_export
  | "no-advertise" -> Some no_advertise
  | _ -> begin
    match String.index_opt s ':' with
    | None -> None
    | Some i -> begin
      let a = String.sub s 0 i in
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt a, int_of_string_opt v) with
      | Some a, Some v when a >= 0 && a <= 0xFFFF && v >= 0 && v <= 0xFFFF ->
        Some (make a v)
      | _, _ -> None
    end
  end

let of_string s =
  match of_string_opt s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Community.of_string: %S" s)

let to_string t =
  if t = no_export then "no-export"
  else if t = no_advertise then "no-advertise"
  else Printf.sprintf "%d:%d" (asn_part t) (value_part t)

let compare = Int.compare
let pp ppf t = Format.pp_print_string ppf (to_string t)
