(** BGP community values (RFC 1997): 32-bit tags conventionally written
    [asn:value]. *)

type t = int
(** Invariant: [0 <= t < 2^32]. *)

val make : int -> int -> t
(** [make asn value] with both in [\[0, 65535\]]. *)

val asn_part : t -> int
val value_part : t -> int

val no_export : t
(** Well-known NO_EXPORT (0xFFFFFF01). *)

val no_advertise : t
(** Well-known NO_ADVERTISE (0xFFFFFF02). *)

val of_string : string -> t
(** Parse ["64500:120"] or a well-known name. @raise Invalid_argument. *)

val of_string_opt : string -> t option
val to_string : t -> string
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
