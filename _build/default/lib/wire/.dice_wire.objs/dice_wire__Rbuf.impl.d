lib/wire/rbuf.ml: Bytes Char
