lib/wire/wbuf.ml: Bytes Char String
