lib/wire/rbuf.mli:
