lib/wire/wbuf.mli:
