type t = { mutable buf : bytes; mutable len : int }

let create ?(capacity = 64) () = { buf = Bytes.create (max 8 capacity); len = 0 }

let length t = t.len

let ensure t extra =
  let needed = t.len + extra in
  if needed > Bytes.length t.buf then begin
    let cap = ref (Bytes.length t.buf) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let nb = Bytes.create !cap in
    Bytes.blit t.buf 0 nb 0 t.len;
    t.buf <- nb
  end

let u8 t v =
  assert (v >= 0 && v <= 0xFF);
  ensure t 1;
  Bytes.unsafe_set t.buf t.len (Char.unsafe_chr v);
  t.len <- t.len + 1

let u16 t v =
  assert (v >= 0 && v <= 0xFFFF);
  ensure t 2;
  Bytes.set t.buf t.len (Char.chr (v lsr 8));
  Bytes.set t.buf (t.len + 1) (Char.chr (v land 0xFF));
  t.len <- t.len + 2

let u32 t v =
  assert (v >= 0 && v <= 0xFFFFFFFF);
  ensure t 4;
  Bytes.set t.buf t.len (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set t.buf (t.len + 1) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set t.buf (t.len + 2) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set t.buf (t.len + 3) (Char.chr (v land 0xFF));
  t.len <- t.len + 4

let bytes t b =
  ensure t (Bytes.length b);
  Bytes.blit b 0 t.buf t.len (Bytes.length b);
  t.len <- t.len + Bytes.length b

let string t s =
  ensure t (String.length s);
  Bytes.blit_string s 0 t.buf t.len (String.length s);
  t.len <- t.len + String.length s

let patch_u16 t off v =
  assert (off >= 0 && off + 2 <= t.len && v >= 0 && v <= 0xFFFF);
  Bytes.set t.buf off (Char.chr (v lsr 8));
  Bytes.set t.buf (off + 1) (Char.chr (v land 0xFF))

let mark t = t.len

let contents t = Bytes.sub t.buf 0 t.len

let reset t = t.len <- 0
