(** Growable big-endian (network byte order) binary writer. *)

type t

val create : ?capacity:int -> unit -> t

val length : t -> int
(** Bytes written so far. *)

val u8 : t -> int -> unit
(** Append one byte. Value must fit in [\[0, 255\]]. *)

val u16 : t -> int -> unit
(** Append a big-endian 16-bit value in [\[0, 65535\]]. *)

val u32 : t -> int -> unit
(** Append a big-endian 32-bit value in [\[0, 2^32)]. *)

val bytes : t -> bytes -> unit
val string : t -> string -> unit

val patch_u16 : t -> int -> int -> unit
(** [patch_u16 t off v] overwrites the 16-bit value at offset [off] —
    used to backfill length fields after the payload is known. *)

val mark : t -> int
(** Current offset, for later [patch_u16]. *)

val contents : t -> bytes
(** A copy of everything written. *)

val reset : t -> unit
