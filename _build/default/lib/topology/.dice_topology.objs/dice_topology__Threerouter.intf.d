lib/topology/threerouter.mli: Config_types Dice_bgp Dice_inet Dice_sim Dice_trace Ipv4 Prefix Router Router_node
