lib/topology/threerouter.ml: Array Config_parser Dice_bgp Dice_inet Dice_sim Dice_trace Ipv4 List Prefix Printf Rib Router Router_node
