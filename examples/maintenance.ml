(* Operator-action validation (paper §5): test a configuration change on
   cloned live state before committing it to the running router.

   The operator of the provider AS discovers (via DiCE) that the customer
   filter leaks 198/8, and drafts two candidate fixes:
   - a correct one that pins the second pattern to the customer's /22;
   - an over-eager one that also drops the customer's legitimate /24.

   Validation explores both *proposed* configurations over a clone of the
   live router's current state — with the very announcements observed on
   the live sessions as seeds — and reports what each change fixes,
   introduces, and breaks.

   Run with: dune exec examples/maintenance.exe *)


open Dice_inet
open Dice_bgp
open Dice_core
module Threerouter = Dice_topology.Threerouter


let establish router peer remote_as =
  ignore (Router.handle_event router ~peer Fsm.Manual_start);
  ignore (Router.handle_event router ~peer Fsm.Tcp_connected);
  ignore
    (Router.handle_msg router ~peer
       (Msg.Open
          { Msg.version = 4; my_as = remote_as land 0xFFFF; hold_time = 90; bgp_id = peer;
            capabilities = [ Msg.Cap_as4 remote_as ] }));
  ignore (Router.handle_msg router ~peer Msg.Keepalive)

let config_with_filter filter_body =
  Config_parser.parse
    (Printf.sprintf
       {|
       router id 10.0.2.1;
       local as %d;
       filter customer_in {
         %s
       }
       protocol bgp customer {
         neighbor 10.0.1.2 as %d;
         import filter customer_in;
         export all;
       }
       protocol bgp internet {
         neighbor 10.0.2.2 as %d;
         import all;
         export all;
       }
       anycast [ 192.88.99.0/24 ];
       |}
       Threerouter.provider_as filter_body Threerouter.customer_as Threerouter.internet_as)

(* the running (leaky) configuration — the paper's §4.2 scenario *)
let running_filter =
  {| if net ~ [ 203.0.113.0/24{24,28}, 198.0.0.0/8{8,28} ] then {
       bgp_local_pref = 120; accept;
     }
     reject; |}

(* candidate fix #1: pin the second pattern to the customer's block *)
let good_fix =
  {| if net ~ [ 203.0.113.0/24{24,28}, 198.51.100.0/22{22,28} ] then {
       bgp_local_pref = 120; accept;
     }
     reject; |}

(* candidate fix #2: over-eager — drops the customer's own /24 too *)
let overeager_fix =
  {| if net ~ [ 198.51.100.0/22{22,28} ] then {
       bgp_local_pref = 120; accept;
     }
     reject; |}

let () =
  print_endline "== validating a filter change before committing it ==\n";
  let live = Router.create (config_with_filter running_filter) in
  establish live Threerouter.customer_addr Threerouter.customer_as;
  establish live Threerouter.internet_addr Threerouter.internet_as;
  (* live state: a table from upstream plus the customer's announcements *)
  let trace =
    Dice_trace.Gen.generate
      { Dice_trace.Gen.default_params with Dice_trace.Gen.n_prefixes = 3_000 }
  in
  ignore
    (Dice_trace.Replay.feed_dump live ~peer:Threerouter.internet_addr
       ~next_hop:Threerouter.internet_addr trace);
  let customer_route =
    Route.make ~origin:Attr.Igp
      ~as_path:[ Asn.Path.Seq [ Threerouter.customer_as ] ]
      ~next_hop:Threerouter.customer_addr ()
  in
  List.iter
    (fun prefix ->
      ignore
        (Router.handle_msg live ~peer:Threerouter.customer_addr
           (Msg.Update
              { Msg.withdrawn = []; attrs = Route.to_attrs customer_route; nlri = [ prefix ] })))
    Threerouter.customer_prefixes;
  Printf.printf "live router: %d routes\n\n" (Rib.Loc.cardinal (Router.loc_rib live));

  (* the observed inputs that become validation seeds *)
  let seeds =
    List.map
      (fun prefix ->
        { Orchestrator.tag = "obs-" ^ Prefix.to_string prefix;
          peer = Threerouter.customer_addr;
          prefix;
          route = customer_route;
        })
      Threerouter.customer_prefixes
  in
  let cfg =
    { Orchestrator.default_cfg with
      Orchestrator.exploration =
        { Orchestrator.default_exploration with
          Orchestrator.explorer =
            { Dice_concolic.Explorer.default_config with
              Dice_concolic.Explorer.max_runs = 160;
              max_depth = 96;
            };
        };
    }
  in
  List.iter
    (fun (name, filter_body) ->
      let proposed = config_with_filter filter_body in
      let c = Validate.config_change ~cfg ~live:(Speakers.bird live) ~proposed ~seeds () in
      Printf.printf "---- proposed change: %s ----\n" name;
      Format.printf "%a@.@." Validate.pp c)
    [ ("pin the pattern to the customer /22 (good fix)", good_fix);
      ("drop the 203.0.113.0/24 pattern too (over-eager)", overeager_fix) ]
