(* Operator-action validation (paper §5): test a configuration change on
   cloned live state before committing it to the running router.

   The operator of the provider AS discovers (via DiCE) that the customer
   filter leaks 198/8, and drafts two candidate fixes:
   - a correct one that pins the second pattern to the customer's /22;
   - an over-eager one that also drops the customer's legitimate /24.

   Validation explores both *proposed* configurations over a clone of the
   live router's current state — with the very announcements observed on
   the live sessions as seeds — and reports what each change fixes,
   introduces, and breaks.

   Run with: dune exec examples/maintenance.exe *)


open Dice_inet
open Dice_bgp
open Dice_core
module Threerouter = Dice_topology.Threerouter

(* Figure-2 addressing, resolved through the topology spec *)
let tr_f2_spec = Threerouter.spec Threerouter.Correct
let tr_customer_addr = Dice_topology.Topology.Spec.address tr_f2_spec ~of_:"customer" ~toward:"provider"
let tr_internet_addr = Dice_topology.Topology.Spec.address tr_f2_spec ~of_:"internet" ~toward:"provider"



let establish router peer remote_as =
  ignore (Router.handle_event router ~peer Fsm.Manual_start);
  ignore (Router.handle_event router ~peer Fsm.Tcp_connected);
  ignore
    (Router.handle_msg router ~peer
       (Msg.Open
          { Msg.version = 4; my_as = remote_as land 0xFFFF; hold_time = 90; bgp_id = peer;
            capabilities = [ Msg.Cap_as4 remote_as ] }));
  ignore (Router.handle_msg router ~peer Msg.Keepalive)

(* the operator's intent, parameterized by what the customer may
   announce: one permitting rule over a named prefix set, everything
   else denied. The drafts differ only in the set's patterns. *)
let pat base low high = { Filter.base = Prefix.of_string base; low; high }

let intent_with patterns =
  Intent.make ~router_id:(Ipv4.of_string "10.0.2.1")
    ~local_as:Threerouter.provider_as
    ~prefix_sets:[ ("customer_blocks", patterns) ]
    ~policies:
      [ Intent.policy ~default:Intent.Deny "customer_in"
          [ Intent.permit
              ~matches:[ Intent.Prefixes "customer_blocks" ]
              ~actions:[ Intent.Set_local_pref 120 ] () ] ]
    ~sessions:
      [ Intent.session "customer" ~import:(Intent.Apply "customer_in")
          ~neighbor:tr_customer_addr ~remote_as:Threerouter.customer_as;
        Intent.session "internet" ~neighbor:tr_internet_addr
          ~remote_as:Threerouter.internet_as ]
    ~anycast:[ Prefix.of_string "192.88.99.0/24" ] ()

(* the running (leaky) patterns — the paper's §4.2 scenario *)
let running = [ pat "203.0.113.0/24" 24 28; pat "198.0.0.0/8" 8 28 ]

(* candidate fix #1: pin the second pattern to the customer's block *)
let good_fix = [ pat "203.0.113.0/24" 24 28; pat "198.51.100.0/22" 22 28 ]

(* candidate fix #2: over-eager — drops the customer's own /24 too *)
let overeager_fix = [ pat "198.51.100.0/22" 22 28 ]

let () =
  print_endline "== validating a filter change before committing it ==\n";
  (* the live router runs the BIRD rendering of the running intent *)
  let live = Router.create (Dialect.realize (module Bird_dialect) (intent_with running)) in
  establish live tr_customer_addr Threerouter.customer_as;
  establish live tr_internet_addr Threerouter.internet_as;
  (* live state: a table from upstream plus the customer's announcements *)
  let trace =
    Dice_trace.Gen.generate
      { Dice_trace.Gen.default_params with Dice_trace.Gen.n_prefixes = 3_000 }
  in
  ignore
    (Dice_trace.Replay.feed_dump live ~peer:tr_internet_addr
       ~next_hop:tr_internet_addr trace);
  let customer_route =
    Route.make ~origin:Attr.Igp
      ~as_path:[ Asn.Path.Seq [ Threerouter.customer_as ] ]
      ~next_hop:tr_customer_addr ()
  in
  List.iter
    (fun prefix ->
      ignore
        (Router.handle_msg live ~peer:tr_customer_addr
           (Msg.Update
              { Msg.withdrawn = []; attrs = Route.to_attrs customer_route; nlri = [ prefix ] })))
    Threerouter.customer_prefixes;
  Printf.printf "live router: %d routes\n\n" (Rib.Loc.cardinal (Router.loc_rib live));

  (* the observed inputs that become validation seeds *)
  let seeds =
    List.map
      (fun prefix ->
        { Orchestrator.tag = "obs-" ^ Prefix.to_string prefix;
          peer = tr_customer_addr;
          prefix;
          route = customer_route;
        })
      Threerouter.customer_prefixes
  in
  let cfg =
    { Orchestrator.default_cfg with
      Orchestrator.exploration =
        { Orchestrator.default_exploration with
          Orchestrator.explorer =
            { Dice_concolic.Explorer.default_config with
              Dice_concolic.Explorer.max_runs = 160;
              max_depth = 96;
            };
        };
    }
  in
  List.iter
    (fun (name, patterns) ->
      (* the proposal stays dialect-neutral: config_change realizes it
         through the live implementation's own translator *)
      let proposed = Speaker.Intent (intent_with patterns) in
      let c = Validate.config_change ~cfg ~live:(Speakers.bird live) ~proposed ~seeds () in
      Printf.printf "---- proposed change: %s ----\n" name;
      Format.printf "%a@.@." Validate.pp c)
    [ ("pin the pattern to the customer /22 (good fix)", good_fix);
      ("drop the 203.0.113.0/24 pattern too (over-eager)", overeager_fix) ]
