(* Cross-network exploration across administrative domains (paper §2.4),
   now heterogeneous: the cooperating upstream runs the Quagga-flavored
   speaker while the DiCE-enabled provider runs BIRD.

   The federated setting: the upstream keeps its routing table private
   ("competitive concerns are likely to induce individual providers to
   keep private much of their current state and configuration") — its
   export policy towards the provider is "none", so the provider's own
   RIB contains almost nothing and *local* checking cannot see origin
   conflicts. The upstream cooperates only through DiCE's narrow
   interface: it checkpoints its own state, processes exploration
   messages over an isolated clone, and answers with verdicts — no RIB
   contents cross the domain boundary, and nothing in the interface
   reveals (or depends on) which BGP implementation answers.

   Run with: dune exec examples/federation.exe *)

open Dice_inet
open Dice_bgp
open Dice_core

(* Figure-2 addressing, resolved through the topology spec *)
let tr_f2_spec = Dice_topology.Threerouter.spec Dice_topology.Threerouter.Correct
let tr_customer_addr = Dice_topology.Topology.Spec.address tr_f2_spec ~of_:"customer" ~toward:"provider"
let tr_internet_addr = Dice_topology.Topology.Spec.address tr_f2_spec ~of_:"internet" ~toward:"provider"


let p = Prefix.of_string
let provider_facing = Ipv4.of_string "10.0.2.1"
let collector = Ipv4.of_string "10.0.3.2"

(* the upstream's configuration as dialect-neutral operator intent: each
   implementation renders and re-parses it through its own translator *)
let upstream_intent =
  Intent.make ~router_id:(Ipv4.of_string "10.0.2.2") ~local_as:64700
    ~sessions:
      [ Intent.session "provider" ~export:Intent.Block ~neighbor:provider_facing
          ~remote_as:64510;
        Intent.session "collector" ~export:Intent.Block ~neighbor:collector
          ~remote_as:64701 ]
    ()

let mk_upstream impl =
  match Speakers.create impl (Speaker.Intent upstream_intent) with
  | Some sp -> sp
  | None -> invalid_arg ("unknown speaker: " ^ impl)

let establish_router router peer remote_as =
  ignore (Router.handle_event router ~peer Fsm.Manual_start);
  ignore (Router.handle_event router ~peer Fsm.Tcp_connected);
  ignore
    (Router.handle_msg router ~peer
       (Msg.Open
          { Msg.version = 4; my_as = remote_as land 0xFFFF; hold_time = 90; bgp_id = peer;
            capabilities = [ Msg.Cap_as4 remote_as ] }));
  ignore (Router.handle_msg router ~peer Msg.Keepalive)

let () =
  print_endline "== cross-domain exploration through a narrow interface ==\n";

  (* The upstream (a different administrative domain, a different BGP
     implementation): a Quagga-flavored speaker with a full table
     learned from its own collector session, nothing exported to the
     provider. Establishment and feeding go through the SPEAKER
     interface — the example never names Qrouter. *)
  let upstream = mk_upstream "quagga" in
  Speaker.establish upstream ~peer:provider_facing;
  Speaker.establish upstream ~peer:collector;
  let trace =
    Dice_trace.Gen.generate
      { Dice_trace.Gen.default_params with Dice_trace.Gen.n_prefixes = 5_000;
        collector_as = 64701 }
  in
  List.iter
    (fun msg -> ignore (Speaker.feed upstream ~peer:collector msg))
    (Dice_trace.Gen.to_updates trace ~peer_as:64701 ~next_hop:collector);
  Printf.printf "upstream (private, %s) table: %d routes\n" (Speaker.id upstream)
    (Rib.Loc.cardinal (Speaker.loc_rib upstream));

  (* The provider: mis-filtered customer session; its upstream session
     receives nothing, so its own RIB is nearly empty. *)
  let provider =
    Router.create (Dice_topology.Threerouter.provider_config
                     Dice_topology.Threerouter.Partially_correct)
  in
  establish_router provider tr_customer_addr 64501;
  establish_router provider tr_internet_addr 64700;
  let customer_route =
    Route.make ~origin:Attr.Igp
      ~as_path:[ Asn.Path.Seq [ Dice_topology.Threerouter.customer_as ] ]
      ~next_hop:tr_customer_addr ()
  in
  List.iter
    (fun prefix ->
      ignore
        (Router.handle_msg provider ~peer:tr_customer_addr
           (Msg.Update
              { Msg.withdrawn = []; attrs = Route.to_attrs customer_route; nlri = [ prefix ] })))
    Dice_topology.Threerouter.customer_prefixes;
  Printf.printf "provider (local, bird) table:   %d routes -- the upstream exports nothing\n\n"
    (Rib.Loc.cardinal (Router.loc_rib provider));

  (* DiCE at the provider, with the upstream cooperating as a remote
     agent — here over the federated wire: the upstream serves probe
     frames from a node on a simulated network, and the link is slow
     (80 ms) and flaky (it drops mid-run, below). Only Probe_wire
     frames ever cross it; the provider cannot tell it is probing a
     different implementation. *)
  let net = Dice_sim.Network.create () in
  let serving =
    Distributed.agent ~name:"upstream-AS64700"
      ~addr:tr_internet_addr
      ~explorer_addr:provider_facing
      (Distributed.Local upstream)
  in
  let srv = Distributed.serve net serving in
  let cl = Probe_rpc.client net ~name:"provider-explorer" in
  Dice_sim.Network.connect net (Probe_rpc.client_node cl)
    (Probe_rpc.server_node srv) ~latency:0.080;
  let ep =
    Probe_rpc.endpoint
      ~config:{ Probe_rpc.default_config with Probe_rpc.timeout = 0.05; retries = 3 }
      cl ~server:(Probe_rpc.server_node srv)
  in
  let agent =
    Distributed.agent ~name:"upstream-AS64700"
      ~addr:tr_internet_addr
      ~explorer_addr:provider_facing
      (Distributed.Remote ep)
  in
  (* the first attempt's 50 ms timeout always loses to the 160 ms round
     trip; the exponential backoff recovers on a later attempt *)
  let cfg =
    { Orchestrator.default_cfg with
      Orchestrator.checkers =
        [ Hijack.checker; Distributed.checker ~jobs:1 ~agents:[ agent ] ];
      exploration =
        { Orchestrator.default_exploration with
          Orchestrator.explorer =
            { Dice_concolic.Explorer.default_config with
              Dice_concolic.Explorer.max_runs = 256;
              max_depth = 96;
            };
        };
    }
  in
  let dice = Orchestrator.create ~cfg (Speakers.bird provider) in
  Orchestrator.observe dice ~peer:tr_customer_addr
    ~prefix:(p "203.0.113.0/24") ~route:customer_route;
  let report = Orchestrator.explore dice in

  let by_checker name =
    List.filter (fun (f : Checker.fault) -> f.Checker.checker = name)
      report.Orchestrator.faults
  in
  Printf.printf "local findings   (origin-hijack):          %d\n"
    (List.length (by_checker "origin-hijack"));
  Printf.printf "local findings   (filter-leak):            %d\n"
    (List.length (by_checker "filter-leak"));
  Printf.printf "remote findings  (remote-origin-conflict): %d\n"
    (List.length (by_checker "remote-origin-conflict"));
  Printf.printf "remote findings  (remote-coverage-leak):   %d\n"
    (List.length (by_checker "remote-coverage-leak"));
  Printf.printf "remote findings  (remote-propagation):     %d\n"
    (List.length (by_checker "remote-propagation"));
  let client_stats = Distributed.stats agent in
  let server_stats = Distributed.stats serving in
  Printf.printf
    "\nwire: %d probes (%d retried over the slow link, %d timed out), answered over\n\
     %d checkpoint(s) of the upstream's own state\n"
    client_stats.Distributed.probes client_stats.Distributed.retries
    client_stats.Distributed.timeouts server_stats.Distributed.checkpoints;
  print_endline "";
  List.iter
    (fun (f : Checker.fault) ->
      if f.Checker.checker = "remote-origin-conflict"
         || f.Checker.checker = "remote-coverage-leak" then
        Format.printf "%a@." Checker.pp_fault f)
    report.Orchestrator.faults;
  print_endline
    "\nthe conflicting routes live only in the upstream's private RIB: the\n\
     provider could never have detected these locally, yet no routing state\n\
     crossed the domain boundary — only accept/conflict/propagation verdicts.";

  (* Now the inter-domain link partitions. Probing degrades to a timeout
     after the configured retries — exploration would keep going with one
     fewer cooperating domain, not hang or crash. *)
  Dice_sim.Network.disconnect net (Probe_rpc.client_node cl) (Probe_rpc.server_node srv);
  let answer =
    Distributed.probe agent ~from:provider_facing
      (Msg.Update
         { Msg.withdrawn = []; attrs = Route.to_attrs customer_route;
           nlri = [ p "198.51.100.0/24" ] })
  in
  let partitioned = Distributed.stats agent in
  Printf.printf
    "\nlink cut: probe %s after %d total timeout(s) — a partitioned domain\n\
     degrades the federation, it never stalls it\n"
    (match answer with
    | Distributed.Timeout -> "timed out"
    | Distributed.Verdicts _ -> "unexpectedly answered"
    | Distributed.Declined r -> "declined: " ^ r)
    partitioned.Distributed.timeouts;

  (* The link heals, but badly: a quarter of frames now drop, another
     quarter arrive twice, and frames jostle within a 2-frame window.
     The probe layer stays correct — retries recover losses, the
     server's request-id cache keeps execution at-most-once, the client
     drops late duplicate responses — and the whole fault schedule is
     replayable from one seed. *)
  Dice_sim.Network.connect net (Probe_rpc.client_node cl)
    (Probe_rpc.server_node srv) ~latency:0.010;
  Dice_sim.Network.set_fault_seed net 42L;
  Dice_sim.Network.set_faults net (Probe_rpc.client_node cl)
    (Probe_rpc.server_node srv)
    (Dice_sim.Faults.make ~drop:0.25 ~duplicate:0.25 ~reorder:2 ());
  let before = Distributed.stats agent in
  let executed_before = Probe_rpc.frames_executed srv in
  let dedup_before = Probe_rpc.dedup_hits srv in
  let late_before = (Probe_rpc.stats ep).Probe_rpc.late_responses in
  let answered =
    List.length
      (List.filter
         (fun prefix ->
           match
             Distributed.probe agent ~from:provider_facing
               (Msg.Update
                  { Msg.withdrawn = []; attrs = Route.to_attrs customer_route;
                    nlri = [ p prefix ] })
           with
           | Distributed.Verdicts _ | Distributed.Declined _ -> true
           | Distributed.Timeout -> false)
         [ "198.51.20.0/24"; "198.51.21.0/24"; "198.51.22.0/24";
           "198.51.23.0/24"; "198.51.24.0/24"; "198.51.25.0/24";
           "198.51.26.0/24"; "198.51.27.0/24" ])
  in
  ignore (Dice_sim.Network.run net);
  let after = Distributed.stats agent in
  let rpc = Probe_rpc.stats ep in
  Printf.printf
    "\nlink healed lossy (drop 25%%, duplicate 25%%, reorder window 2, seed 42):\n\
     %d/8 probes answered; %d retr(ies) recovered %d dropped frame(s);\n\
     %d frame(s) duplicated in flight, %d answered from the server's reply cache\n\
     (executed exactly %d time(s) — at-most-once), %d late response(s) discarded;\n\
     %d frame(s) reordered. Rerunning with set_fault_seed net 42L replays this\n\
     exact schedule, counters and all.\n"
    answered
    (after.Distributed.retries - before.Distributed.retries)
    (Dice_sim.Network.messages_dropped net)
    (Dice_sim.Network.messages_duplicated net)
    (Probe_rpc.dedup_hits srv - dedup_before)
    (Probe_rpc.frames_executed srv - executed_before)
    (rpc.Probe_rpc.late_responses - late_before)
    (Dice_sim.Network.messages_reordered net);

  (* Divergence hunting: the same administrative domain modeled by
     THREE implementations, probed with identical messages. A pairwise
     check could only say that two speakers disagree; the panel outvotes
     the deviant member and names it. Seed a route on which the
     implementations legitimately split: incumbent and challenger tie on
     every policy-level fact (equal path length, equal ORIGIN, no
     applicable MED), so the decision comes down to each
     implementation's own tie-breaking tail — BIRD and Quagga fall
     through to peer identity and prefer the challenger's peer, XORP
     compares IGP cost to the next hop first and keeps the incumbent's
     lower one. *)
  print_endline
    "\n== divergence panel: BIRD vs Quagga vs XORP behind the same narrow interface ==\n";
  let incumbent =
    Route.make ~origin:Attr.Igp
      ~as_path:[ Asn.Path.Seq [ 64701; 64999 ] ]
      ~next_hop:(Ipv4.of_string "10.0.0.1") ()
  in
  let panel =
    List.map
      (fun impl ->
        let sp = mk_upstream impl in
        Speaker.establish sp ~peer:provider_facing;
        Speaker.establish sp ~peer:collector;
        ignore
          (Speaker.feed sp ~peer:collector
             (Msg.Update
                { Msg.withdrawn = []; attrs = Route.to_attrs incumbent;
                  nlri = [ p "198.51.77.0/24" ] }));
        Distributed.agent ~name:impl
          ~addr:tr_internet_addr
          ~explorer_addr:provider_facing (Distributed.Local sp))
      Speakers.names
  in
  (* the challenger, dressed up the way real announcements arrive: a
     MED and a community that have nothing to do with the divergence,
     hidden in a schedule of unrelated noise announcements *)
  let challenger =
    ( provider_facing,
      Msg.Update
        { Msg.withdrawn = [];
          attrs =
            Route.to_attrs
              (Route.make ~origin:Attr.Igp ~med:(Some 50)
                 ~communities:[ Community.make 64510 77 ]
                 ~as_path:[ Asn.Path.Seq [ 64510; 64999 ] ]
                 ~next_hop:provider_facing ());
          nlri = [ p "198.51.77.0/24" ];
        } )
  in
  let noise i =
    ( provider_facing,
      Msg.Update
        { Msg.withdrawn = [];
          attrs =
            Route.to_attrs
              (Route.make ~origin:Attr.Igp
                 ~as_path:[ Asn.Path.Seq [ 64510; 64800 + i ] ]
                 ~next_hop:provider_facing ());
          nlri = [ p (Printf.sprintf "100.%d.0.0/16" i) ];
        } )
  in
  let schedule = List.init 12 (fun i -> if i = 6 then challenger else noise i) in
  let divergences = Panel.probe ~jobs:1 ~agents:panel schedule in
  Printf.printf "probed a %d-message schedule; %d divergence(s):\n"
    (List.length schedule) (List.length divergences);
  List.iter (fun d -> Format.printf "%a@." Panel.pp_divergence d) divergences;

  (* Delta-debug the schedule down to the messages that matter: ddmin
     drops the noise, attribute shrinking strips the irrelevant MED and
     community off the challenger. *)
  (match divergences with
  | [] -> ()
  | d :: _ ->
    let minimal, st =
      Minimize.divergence ~jobs:1 ~agents:panel
        { Panel.schedule; divergence = d }
    in
    Printf.printf
      "\nminimized: %d -> %d message(s), %d attribute shrink(s), %d predicate test(s)\n"
      st.Minimize.initial_len (List.length minimal) st.Minimize.shrunk
      st.Minimize.tests;
    List.iter
      (fun (from, msg) ->
        Format.printf "  from %s: %a@." (Ipv4.to_string from) Msg.pp msg)
      minimal;

    (* Package the minimal repro as a self-contained artifact: speaker
       names, the intent the members were realized from, priming setup,
       schedule, and the expected divergence signature — any speaker
       subset can re-execute it, re-rendering the intent through each
       member's own dialect. *)
    let artifact =
      { Panel.Artifact.speakers = Speakers.names;
        source = Panel.Artifact.Intent_text (Intent.to_string upstream_intent);
        setup =
          [ ( collector,
              Msg.Update
                { Msg.withdrawn = []; attrs = Route.to_attrs incumbent;
                  nlri = [ p "198.51.77.0/24" ] } ) ];
        schedule = minimal;
        signature = Panel.signature d;
        absent = [];
      }
    in
    let file = Filename.temp_file "federation-demo" ".repro" in
    Panel.Artifact.save file artifact;
    Printf.printf "\nartifact: %d bytes at %s (signature %s)\n"
      (Bytes.length (Panel.Artifact.encode artifact))
      file (Panel.signature d);
    let replayed = Panel.Artifact.replay ~jobs:1 (Panel.Artifact.load file) in
    Printf.printf "full-panel replay:   %d divergence(s), %s\n"
      (List.length replayed)
      (if Panel.Artifact.reproduces artifact replayed then "reproduces"
       else "DOES NOT reproduce");
    (* drop the outlier: the survivors agree, which is the point of
       having three members — the panel isolated the deviant *)
    let survivors =
      List.filter (fun n -> not (List.mem n d.Panel.outliers)) Speakers.names
    in
    let subset = Panel.Artifact.replay ~speakers:survivors ~jobs:1 artifact in
    Printf.printf "replay without %s: %d divergence(s) among %s\n"
      (String.concat "," d.Panel.outliers)
      (List.length subset)
      (String.concat "+" survivors);
    Sys.remove file);
  print_endline
    "\nall members accept the announcement and agree on the origin facts; they\n\
     split on which route wins the decision process, and with three voters the\n\
     panel names the implementation that left the majority — then hands back a\n\
     minimal, replayable repro instead of a 12-message exploration trace."
