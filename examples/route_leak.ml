(* Route-leak detection (paper §4.2): reproduce the Pakistan Telecom /
   YouTube incident in the testbed and show DiCE flagging the
   misconfiguration *before* a real hijack happens.

   The provider's customer-route filter is compared in three variants:
   correct, partially correct (the paper's scenario) and missing.

   Run with: dune exec examples/route_leak.exe *)

open Dice_inet
open Dice_bgp
open Dice_topology
open Dice_core

(* Figure-2 addressing, resolved through the topology spec *)
let tr_f2_spec = Threerouter.spec Threerouter.Correct
let tr_customer_addr = Topology.Spec.address tr_f2_spec ~of_:"customer" ~toward:"provider"


let explore_with filtering =
  let topo = Threerouter.build filtering in
  Threerouter.start topo;
  let trace =
    Dice_trace.Gen.generate
      { Dice_trace.Gen.default_params with n_prefixes = 3_000; duration = 60.0 }
  in
  ignore (Threerouter.load_table topo trace);
  let provider = Threerouter.provider_router topo in
  let cfg =
    { Orchestrator.default_cfg with
      Orchestrator.exploration =
        { Orchestrator.default_exploration with
          Orchestrator.explorer =
            { Dice_concolic.Explorer.default_config with
              Dice_concolic.Explorer.max_runs = 256;
              max_depth = 96;
            };
        };
    }
  in
  let dice = Orchestrator.create ~cfg (Speakers.bird provider) in
  (* DiCE derives exploration inputs from a routine observed announcement *)
  let route =
    Route.make ~origin:Attr.Igp
      ~as_path:[ Asn.Path.Seq [ Threerouter.customer_as ] ]
      ~next_hop:tr_customer_addr ()
  in
  Orchestrator.observe dice ~peer:tr_customer_addr
    ~prefix:(Prefix.of_string "203.0.113.0/24")
    ~route;
  Orchestrator.explore dice

let () =
  print_endline "== route-leak detection across filter configurations ==\n";
  List.iter
    (fun filtering ->
      let report = explore_with filtering in
      let criticals =
        List.filter
          (fun (f : Checker.fault) -> f.severity = Checker.Critical)
          report.Orchestrator.faults
      in
      let warnings =
        List.filter
          (fun (f : Checker.fault) -> f.severity = Checker.Warning)
          report.Orchestrator.faults
      in
      Printf.printf "filtering=%-18s  hijackable ranges: %d   leaks: %d\n"
        (Threerouter.filtering_to_string filtering)
        (List.length criticals) (List.length warnings);
      List.iter
        (fun (f : Checker.fault) ->
          Printf.printf "    CRITICAL %s (%s)\n"
            (Prefix.to_string f.prefix)
            (match List.assoc_opt "trusted-origin" f.details with
            | Some o -> "trusted origin " ^ o
            | None -> f.description))
        criticals)
    [ Threerouter.Correct; Threerouter.Partially_correct; Threerouter.Missing ];
  print_endline
    "\nwith the correct filter DiCE finds nothing to leak; the partially\n\
     correct and missing filters expose hijackable prefix ranges that an\n\
     operator could now protect before any real announcement abuses them."
