(* Quickstart: build the paper's 3-router topology (Figure 2), bring the
   BGP sessions up, propagate routes, and watch DiCE explore a customer
   announcement on the provider's live state.

   Run with: dune exec examples/quickstart.exe *)

open Dice_inet
open Dice_bgp
open Dice_topology
open Dice_core

(* Figure-2 addressing, resolved through the topology spec *)
let tr_f2_spec = Threerouter.spec Threerouter.Correct
let tr_customer_addr = Topology.Spec.address tr_f2_spec ~of_:"customer" ~toward:"provider"


let () =
  print_endline "== DiCE quickstart ==";
  print_endline "building Customer -- Provider(DiCE) -- Internet topology...";
  let topo = Threerouter.build Threerouter.Partially_correct in
  Threerouter.start topo;
  let provider = Threerouter.provider_router topo in
  Printf.printf "sessions established at the provider: %s\n"
    (String.concat ", "
       (List.map Ipv4.to_string (Router.established_peers provider)));

  (* load a (scaled-down) full table from the Internet side *)
  let trace =
    Dice_trace.Gen.generate
      { Dice_trace.Gen.default_params with n_prefixes = 2_000; duration = 60.0 }
  in
  let table_size = Threerouter.load_table topo trace in
  Printf.printf "provider Loc-RIB after table load: %d routes\n" table_size;

  (* the customer announces its own space; DiCE observes the input *)
  let dice = Orchestrator.create (Speakers.bird provider) in
  let route =
    Route.make ~origin:Attr.Igp
      ~as_path:[ Asn.Path.Seq [ Threerouter.customer_as ] ]
      ~next_hop:tr_customer_addr ()
  in
  Orchestrator.observe dice ~peer:tr_customer_addr
    ~prefix:(Prefix.of_string "203.0.113.0/24")
    ~route;

  print_endline "\nDiCE: checkpointing live state and exploring node actions...";
  let report = Orchestrator.explore dice in
  Format.printf "%a@." Orchestrator.pp_report report;

  let ranges = Hijack.leakable_summary report.Orchestrator.faults in
  if ranges = [] then print_endline "no leakable prefix ranges found."
  else begin
    print_endline "\nleakable prefix ranges (install filters for these!):";
    List.iter
      (fun (p, n) -> Printf.printf "  %-20s %d finding(s)\n" (Prefix.to_string p) n)
      ranges
  end
