(* Memory and CPU overhead of online exploration (paper §4.1).

   Measures, on a router with a loaded table:
   - checkpoint cost: unique pages of the frozen image vs. the live image
     after it kept processing updates;
   - explorer-clone cost: extra pages a clone dirties during exploration;
   - update throughput with and without concurrent exploration.

   Run with: dune exec examples/overhead.exe *)

open Dice_inet
open Dice_bgp
open Dice_core
module Fork = Dice_checkpoint.Fork

(* Figure-2 addressing, resolved through the topology spec *)
let tr_f2_spec = Dice_topology.Threerouter.spec Dice_topology.Threerouter.Correct
let tr_customer_addr = Dice_topology.Topology.Spec.address tr_f2_spec ~of_:"customer" ~toward:"provider"
let tr_internet_addr = Dice_topology.Topology.Spec.address tr_f2_spec ~of_:"internet" ~toward:"provider"


let build_loaded_router n_prefixes =
  let topo = Dice_topology.Threerouter.build Dice_topology.Threerouter.Partially_correct in
  Dice_topology.Threerouter.start topo;
  let trace =
    Dice_trace.Gen.generate
      { Dice_trace.Gen.default_params with n_prefixes; duration = 120.0 }
  in
  ignore (Dice_topology.Threerouter.load_table topo trace);
  (Dice_topology.Threerouter.provider_router topo, trace)

let () =
  print_endline "== DiCE overhead measurements ==";
  let router, trace = build_loaded_router 5_000 in
  Printf.printf "provider table: %d routes\n\n" (Rib.Loc.cardinal (Router.loc_rib router));

  (* --- memory: checkpoint vs live after continued processing --- *)
  let mgr = Fork.create () in
  let cp = Fork.checkpoint mgr ~live_image:(Router.snapshot router) in
  (* live router keeps processing the 15-min update tail *)
  let progress =
    Dice_trace.Replay.feed_events router
      ~peer:tr_internet_addr
      ~next_hop:tr_internet_addr trace
  in
  let unique, fraction = Fork.checkpoint_stats cp ~live_image:(Router.snapshot router) in
  Printf.printf "checkpoint: %d unique pages after live processed %d updates (%.2f%%)\n"
    unique progress.Dice_trace.Replay.updates_sent (100.0 *. fraction);

  (* --- memory: explorer clones --- *)
  let dice =
    Orchestrator.create
      ~cfg:
        { Orchestrator.default_cfg with
          Orchestrator.exploration =
            { Orchestrator.default_exploration with
              Orchestrator.clone_samples = 8;
              explorer =
                { Dice_concolic.Explorer.default_config with
                  Dice_concolic.Explorer.max_runs = 128 };
            };
        }
      (Speakers.bird router)
  in
  let route =
    Route.make ~origin:Attr.Igp
      ~as_path:[ Asn.Path.Seq [ Dice_topology.Threerouter.customer_as ] ]
      ~next_hop:tr_customer_addr ()
  in
  Orchestrator.observe dice ~peer:tr_customer_addr
    ~prefix:(Prefix.of_string "203.0.113.0/24") ~route;
  let report = Orchestrator.explore dice in
  let clone_stats =
    List.concat_map (fun (sr : Orchestrator.seed_report) -> sr.clone_stats)
      report.Orchestrator.seed_reports
  in
  let stats = Dice_util.Stats.create () in
  List.iter
    (fun (cs : Fork.clone_stats) ->
      Dice_util.Stats.add stats (100.0 *. cs.Fork.extra_fraction))
    clone_stats;
  Printf.printf "explorer clones: %d sampled, extra pages %.2f%% avg (max %.2f%%)\n\n"
    (Dice_util.Stats.count stats) (Dice_util.Stats.mean stats) (Dice_util.Stats.max stats);

  (* --- CPU: update throughput with / without exploration --- *)
  (* Exploration runs off the live node's critical path (the paper gives
     the explorer its own core); the live path pays only for freezing the
     image. We replay a burst of updates, run one exploration episode at
     the midpoint, and compare the two halves. *)
  let throughput with_exploration =
    let router, _ = build_loaded_router 2_000 in
    let dice =
      Orchestrator.create
        ~cfg:
          { Orchestrator.default_cfg with
            Orchestrator.exploration =
              { Orchestrator.default_exploration with
                Orchestrator.explorer =
                  { Dice_concolic.Explorer.default_config with
                    Dice_concolic.Explorer.max_runs = 24 };
              };
          }
        (Speakers.bird router)
    in
    let burst =
      Dice_trace.Gen.generate
        { Dice_trace.Gen.default_params with Dice_trace.Gen.n_prefixes = 10_000; seed = 7L }
    in
    let halfway = ref 0.0 in
    let resume = ref 0.0 in
    let t0 = Unix.gettimeofday () in
    let on_update i =
      if i = 5_000 then begin
        halfway := Unix.gettimeofday ();
        if with_exploration then begin
          Orchestrator.observe dice ~peer:tr_customer_addr
            ~prefix:(Prefix.of_string "203.0.113.0/24") ~route;
          ignore (Orchestrator.explore dice)
        end;
        Gc.full_major ();
        resume := Unix.gettimeofday ()
      end
    in
    let p =
      Dice_trace.Replay.feed_dump ~on_update router
        ~peer:tr_internet_addr
        ~next_hop:tr_internet_addr burst
    in
    let live_seconds = (!halfway -. t0) +. (Unix.gettimeofday () -. !resume) in
    float_of_int p.Dice_trace.Replay.updates_sent /. live_seconds
  in
  (* one discarded warm-up so heap growth doesn't skew the comparison *)
  ignore (throughput true);
  let base = throughput false in
  let with_dice = throughput true in
  Printf.printf "update throughput without exploration: %8.0f updates/s\n" base;
  Printf.printf "update throughput with exploration:    %8.0f updates/s\n" with_dice;
  Printf.printf "impact: %.1f%% (exploration itself runs off the critical path)\n"
    (100.0 *. (1.0 -. (with_dice /. base)))
